//! Peak optical power analysis (§3.2, Figure 7).
//!
//! The peak optical power is the maximum input laser power that can be
//! required in a single cycle. The paper's worst case: every input port of
//! every router simultaneously receives a multicast packet from its nearest
//! neighbour, all packets turn in the same direction to an open output
//! port, every return path signals a dropped packet, and all buffers
//! arbitrate for output ports — maximising crossings and activated
//! components.
//!
//! We model this as a loss budget: each wavelength channel must deliver at
//! least the receiver sensitivity after attenuation through all waveguide
//! crossings (and resonator taps, folded into the per-router crossing
//! count) along the worst-case path. The per-router crossing count is an
//! affine function of the waveguide count, *calibrated* (see `DESIGN.md`)
//! to the paper's quoted operating points: ~32 W at 64 wavelengths / 4 hops
//! / 98 % crossing efficiency, and the same ~32 W at 128 wavelengths /
//! 5 hops.

use crate::devices::{OpticalReceiver, Waveguide};
use crate::units::Milliwatts;
use crate::wdm::{WdmConfig, RETURN_PATH_BITS};

/// Number of routers in the 8x8 mesh.
pub const ROUTERS: u32 = 64;
/// Input ports per router that can hold a packet in the peak scenario.
pub const INPUT_PORTS: u32 = 4;

/// Crossings a packet's light encounters per router traversed:
/// `CROSSINGS_PER_WAVEGUIDE * waveguides + CROSSINGS_FIXED`.
///
/// The affine form captures that each of the packet's waveguides crosses
/// the perpendicular channel's waveguides (proportional term) plus a fixed
/// set of return-path, broadcast-tap, and local-port crossings
/// (*calibrated*).
pub const CROSSINGS_PER_WAVEGUIDE: f64 = 1.44;
/// Fixed crossings per router (see [`CROSSINGS_PER_WAVEGUIDE`]).
pub const CROSSINGS_FIXED: f64 = 18.7;

/// Parameters of one peak-power evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPoint {
    /// WDM packaging.
    pub wdm: WdmConfig,
    /// Maximum hops a packet travels in one cycle.
    pub max_hops: u32,
    /// Per-crossing power transmission (e.g. 0.98).
    pub crossing_efficiency: f64,
}

impl PowerPoint {
    /// Creates an evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if `max_hops` is zero or `crossing_efficiency` is outside
    /// `(0, 1]`.
    pub fn new(wdm: WdmConfig, max_hops: u32, crossing_efficiency: f64) -> Self {
        assert!(max_hops > 0, "max_hops must be positive");
        assert!(
            crossing_efficiency > 0.0 && crossing_efficiency <= 1.0,
            "crossing efficiency must be in (0, 1]"
        );
        PowerPoint {
            wdm,
            max_hops,
            crossing_efficiency,
        }
    }

    /// Worst-case number of crossings along a packet's maximum-length path.
    pub fn worst_case_crossings(&self) -> f64 {
        let per_router =
            CROSSINGS_PER_WAVEGUIDE * f64::from(self.wdm.total_waveguides()) + CROSSINGS_FIXED;
        per_router * f64::from(self.max_hops)
    }

    /// Fraction of launched optical power that survives the worst-case
    /// path.
    pub fn path_transmission(&self) -> f64 {
        Waveguide::crossing_transmission(self.worst_case_crossings(), self.crossing_efficiency)
    }

    /// Number of simultaneously driven wavelength channels in the peak
    /// scenario: a packet on every input port of every router, plus every
    /// return path signalling a drop.
    pub fn peak_active_channels(&self) -> u32 {
        ROUTERS * INPUT_PORTS * (self.wdm.packet_channels() + RETURN_PATH_BITS)
    }

    /// Peak optical input power for the whole network (the z-axis of
    /// Figure 7's contour plot).
    pub fn peak_optical_power(&self) -> Milliwatts {
        let per_channel = OpticalReceiver::SENSITIVITY.value() / self.path_transmission();
        Milliwatts(per_channel * f64::from(self.peak_active_channels()))
    }
}

/// The Figure 7 contour grid: peak power over
/// (crossing efficiency x wavelengths x max hops).
pub fn figure7_grid(efficiencies: &[f64], hops: &[u32]) -> Vec<(f64, WdmConfig, u32, Milliwatts)> {
    let mut rows = Vec::new();
    for &eff in efficiencies {
        for wdm in WdmConfig::SWEEP {
            for &h in hops {
                let p = PowerPoint::new(wdm, h, eff);
                rows.push((eff, wdm, h, p.peak_optical_power()));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watts(wdm: u32, hops: u32, eff: f64) -> f64 {
        PowerPoint::new(WdmConfig::new(wdm), hops, eff)
            .peak_optical_power()
            .as_watts()
    }

    #[test]
    fn paper_operating_point_64wdm_4hop() {
        // Paper: "a four-hop network requires a peak 32W of optical power
        // at 98% crossing efficiency" with 64 wavelengths.
        let w = watts(64, 4, 0.98);
        assert!(
            (w - 32.0).abs() < 4.0,
            "64λ/4hop/98%: {w} W, expected ~32 W"
        );
    }

    #[test]
    fn paper_operating_point_128wdm_5hop() {
        // Paper: "moving to 128 wavelengths permits a five-hop network for
        // the same 32W of power".
        let w = watts(128, 5, 0.98);
        assert!(
            (w - 32.0).abs() < 4.0,
            "128λ/5hop/98%: {w} W, expected ~32 W"
        );
    }

    #[test]
    fn wdm128_4hop_reduces_power() {
        // Paper: 128 wavelengths with a four-hop network reduces peak power
        // from 32 W to ~15 W at 98 % crossing efficiency.
        let w = watts(128, 4, 0.98);
        assert!(w < 22.0 && w > 10.0, "128λ/4hop/98%: {w} W, expected ~15 W");
    }

    #[test]
    fn wdm32_needs_high_efficiency_or_short_hops() {
        // Paper: with 32 wavelengths the network needs >= 99 % crossing
        // efficiency or a 2-3 hop limit to keep peak power reasonable.
        assert!(
            watts(32, 4, 0.98) > 60.0,
            "32λ/4hop/98% should be excessive"
        );
        assert!(
            watts(32, 4, 0.99) < 32.0,
            "32λ/4hop/99% should be reasonable"
        );
        assert!(
            watts(32, 2, 0.98) < 32.0,
            "32λ/2hop/98% should be reasonable"
        );
    }

    #[test]
    fn power_monotonic_in_hops() {
        // "With more hops, more input optical power is required."
        let mut last = 0.0;
        for h in 1..=8 {
            let w = watts(64, h, 0.98);
            assert!(w > last);
            last = w;
        }
    }

    #[test]
    fn power_monotonic_in_efficiency() {
        assert!(watts(64, 4, 0.97) > watts(64, 4, 0.98));
        assert!(watts(64, 4, 0.98) > watts(64, 4, 0.99));
        assert!(watts(64, 4, 0.99) > watts(64, 4, 1.0));
    }

    #[test]
    fn perfect_crossings_leave_only_sensitivity_floor() {
        let p = PowerPoint::new(WdmConfig::PAPER, 4, 1.0);
        let floor =
            f64::from(p.peak_active_channels()) * OpticalReceiver::SENSITIVITY.value() / 1000.0;
        assert!((p.peak_optical_power().as_watts() - floor).abs() < 1e-9);
    }

    #[test]
    fn more_wavelengths_fewer_crossings() {
        let c32 = PowerPoint::new(WdmConfig::new(32), 4, 0.98).worst_case_crossings();
        let c64 = PowerPoint::new(WdmConfig::new(64), 4, 0.98).worst_case_crossings();
        let c128 = PowerPoint::new(WdmConfig::new(128), 4, 0.98).worst_case_crossings();
        assert!(c32 > c64 && c64 > c128);
    }

    #[test]
    fn grid_covers_all_points() {
        let g = figure7_grid(&[0.97, 0.98, 0.99], &[2, 4, 8]);
        assert_eq!(g.len(), 3 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "max_hops")]
    fn zero_hops_rejected() {
        let _ = PowerPoint::new(WdmConfig::PAPER, 0, 0.98);
    }
}
