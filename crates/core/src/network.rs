//! The cycle-accurate Phastlane network simulator (§2).
//!
//! Each cycle proceeds in phases:
//!
//! 1. **Confirm/revert** — launches from the previous cycle either
//!    succeeded (the packet was delivered or an intermediate router
//!    assumed responsibility) and their buffer slots free, or a Packet
//!    Dropped signal arrived over the optical return path and the
//!    launcher reverts the entry with a randomized backoff (§2.1.2).
//! 2. **NIC drain** — packets move from the 50-entry NIC into the local
//!    buffer while space allows.
//! 3. **Arbitration & launch** — each router's rotating-priority arbiter
//!    picks up to four buffered packets for its four output ports
//!    (§2.1.1). Launches claim their output ports: buffered packets have
//!    priority over newly arriving ones.
//! 4. **Optical wavefront** — all launched packets traverse up to
//!    `max_hops` routers within the cycle. At each router, contention is
//!    resolved with the paper's fixed priorities (straight beats turns);
//!    losers are received and buffered at their input port, or dropped
//!    when the buffer is full. Multicast taps deliver copies en route;
//!    interim stops buffer the packet for the next segment (§2.1.3).
//! 5. **Leakage** accrues and the clock advances.

use crate::config::PhastlaneConfig;
use crate::control::RouteControl;
use crate::dropnet::{ReturnPath, ReturnPathRegistry};
use crate::multicast::split_multicast;
use crate::plan::{Plan, StepExit, StopKind};
use crate::policies::ArbitrationPolicy;
use crate::power::EnergyLedger;
use crate::router::{Entry, PacketCore, RouterState};
use phastlane_netsim::ecc::{self, Decoded};
use phastlane_netsim::fastmap::FastMap;
use phastlane_netsim::fault::{productive_detour, FailedDelivery, FaultPlan};
use phastlane_netsim::geometry::{Direction, Mesh, NodeId, Port};
use phastlane_netsim::network::Network;
use phastlane_netsim::nic::Nic;
use phastlane_netsim::obs::{
    EventKind, FlightRecorder, Obs, Phase, PhaseBreakdown, PhaseProfiler, TraceBuffer,
};
use phastlane_netsim::packet::{Delivery, DestSet, NewPacket, PacketId, PacketKind, TargetList};
use phastlane_netsim::rng::SimRng;
use phastlane_netsim::routing::{classify_turn, xy_first_hop, Turn};
use phastlane_netsim::stats::{EnergyReport, NetworkStats};
use phastlane_netsim::telemetry::LinkCounters;
use phastlane_photonics::power::PowerPoint;

/// What a transient bit error did to one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EccOutcome {
    /// No error (or no bit-error fault active).
    Clean,
    /// A single upset, corrected by SECDED; delivery proceeds.
    Corrected,
    /// A double upset: SECDED detects but cannot correct; the delivery
    /// is rejected and the packet re-buffered for retransmission.
    Uncorrectable,
}

/// An in-flight optical packet during one cycle's wavefront.
///
/// Flights are pooled: at the start of each launch phase the previous
/// cycle's flights return to a free list and are reset in place, so
/// their plan/trail/target buffers are reused instead of reallocated.
#[derive(Debug)]
struct Flight {
    uid: u64,
    core: PacketCore,
    plan: Plan,
    /// Targets not yet delivered (shrinks as taps/accepts happen).
    remaining: TargetList,
    /// `(router, exit)` claims made this cycle, for return-path
    /// construction on a drop.
    trail: Vec<(NodeId, Direction)>,
    alive: bool,
}

impl Flight {
    /// An inert flight for the pool; every field is overwritten on
    /// launch.
    fn blank() -> Flight {
        Flight {
            uid: 0,
            core: PacketCore {
                id: PacketId(0),
                src: NodeId(0),
                kind: PacketKind::Data,
                multicast: false,
                injected_cycle: 0,
            },
            plan: Plan::default(),
            remaining: TargetList::new(),
            trail: Vec::new(),
            alive: false,
        }
    }
}

/// An output-port claim for the current cycle.
#[derive(Debug, Clone, Copy)]
struct Claim {
    /// Index into the cycle's flight arena.
    flight: u32,
    /// Plan step at which the claim was made.
    step: u16,
    /// Priority rank, lower wins: the former `(u8, u8)` lexicographic
    /// rank packed big-endian, so `u16` order matches tuple order.
    /// Buffered launches claim at rank 0 and are never displaced;
    /// through-traffic ranks come from the configured `PathPriority`.
    rank: u16,
}

/// Packs a `PathPriority` rank pair preserving lexicographic order.
#[inline]
fn pack_rank((a, b): (u8, u8)) -> u16 {
    (u16::from(a) << 8) | u16::from(b)
}

/// Output-port claims for the current cycle, indexed by directed link
/// (`router * 4 + direction`, matching [`Port::index`] order).
///
/// Epoch-stamped: a slot is live iff its stamp equals the current epoch,
/// so clearing between cycles is one counter bump instead of a hash-map
/// clear, and every lookup is a direct array access instead of a SipHash
/// probe — this table is hit on every optical hop.
#[derive(Debug)]
struct ClaimTable {
    stamp: Vec<u64>,
    claim: Vec<Claim>,
    epoch: u64,
}

impl ClaimTable {
    fn new(nodes: usize) -> ClaimTable {
        ClaimTable {
            stamp: vec![0; nodes * 4],
            claim: vec![
                Claim {
                    flight: 0,
                    step: 0,
                    rank: 0,
                };
                nodes * 4
            ],
            epoch: 0,
        }
    }

    /// Invalidates every claim (start of the launch phase).
    fn begin_cycle(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn index(node: NodeId, dir: Direction) -> usize {
        node.index() * 4 + Port::Dir(dir).index()
    }

    #[inline]
    fn get(&self, node: NodeId, dir: Direction) -> Option<Claim> {
        let idx = Self::index(node, dir);
        if self.stamp[idx] == self.epoch {
            Some(self.claim[idx])
        } else {
            None
        }
    }

    #[inline]
    fn contains(&self, node: NodeId, dir: Direction) -> bool {
        self.stamp[Self::index(node, dir)] == self.epoch
    }

    #[inline]
    fn insert(&mut self, node: NodeId, dir: Direction, claim: Claim) {
        let idx = Self::index(node, dir);
        self.stamp[idx] = self.epoch;
        self.claim[idx] = claim;
    }
}

/// The Phastlane hybrid electrical/optical network.
#[derive(Debug)]
pub struct PhastlaneNetwork {
    cfg: PhastlaneConfig,
    cycle: u64,
    routers: Vec<RouterState>,
    nics: Vec<Nic<Entry>>,
    next_packet_id: u64,
    next_uid: u64,
    /// Remaining undelivered targets per packet id (keyed by the raw
    /// id — sequential, so the open-addressing map probes are short).
    outstanding: FastMap<usize>,
    deliveries: Vec<Delivery>,
    /// Drop signals travelling the return path, indexed by the launching
    /// cycle's flight index: `Some(targets still owed)` when that flight
    /// was dropped. Consumed at the start of the next cycle by the
    /// launcher, whose launch record remembers its flight index.
    drop_slots: Vec<Option<TargetList>>,
    /// Flight arena: the first [`Self::n_flights`] slots are this
    /// cycle's optical flights; slots beyond that are retired flights
    /// whose plan/trail/target buffers await in-place reuse. A launch
    /// never moves a `Flight` — it refills the next slot.
    flights: Vec<Flight>,
    /// Live-flight count (arena prefix length), reset each launch phase.
    n_flights: usize,
    /// Output-port claims for the current cycle.
    claims: ClaimTable,
    /// Confirm-phase scratch: swaps with each router's launched list.
    confirm_scratch: Vec<(u8, u32)>,
    /// Plan-construction scratch (hop direction list).
    plan_dirs: Vec<Direction>,
    energy: EnergyLedger,
    stats: NetworkStats,
    rng: SimRng,
    /// Per-cycle drop-signal link tracker (footnote-4 invariant).
    return_paths: ReturnPathRegistry,
    /// Cumulative per-link traversal counts.
    links: LinkCounters,
    /// Observability handle: one branch per emit site when disabled.
    obs: Obs,
    /// Hot-loop phase profiler: one branch per mark site when disabled.
    profiler: PhaseProfiler,
    /// Scheduled device failures; the empty plan is guaranteed
    /// zero-effect (every fault hook is gated on it).
    fault_plan: FaultPlan,
    /// Dedicated RNG for fault-path randomness (stall backoff jitter,
    /// bit-error positions), kept separate from `rng` so an empty plan
    /// leaves the main backoff stream untouched.
    fault_rng: SimRng,
    /// Destinations terminally given up on, awaiting `drain_failures`.
    failures: Vec<FailedDelivery>,
}

impl PhastlaneNetwork {
    /// Builds a network from a configuration.
    pub fn new(cfg: PhastlaneConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = cfg.mesh.nodes();
        let routers = (0..nodes).map(|_| RouterState::new(cfg.buffers)).collect();
        let nics = (0..nodes).map(|_| Nic::new(cfg.nic_entries)).collect();
        let energy = EnergyLedger::new(nodes, cfg.wdm, cfg.max_hops, cfg.crossing_efficiency);
        let rng = SimRng::seed_from_u64(cfg.seed);
        PhastlaneNetwork {
            cfg,
            cycle: 0,
            routers,
            nics,
            next_packet_id: 0,
            next_uid: 0,
            outstanding: FastMap::new(),
            deliveries: Vec::new(),
            drop_slots: Vec::new(),
            flights: Vec::new(),
            n_flights: 0,
            claims: ClaimTable::new(nodes),
            confirm_scratch: Vec::new(),
            plan_dirs: Vec::new(),
            energy,
            stats: NetworkStats::default(),
            rng,
            return_paths: ReturnPathRegistry::new(),
            links: LinkCounters::for_mesh(mesh),
            obs: Obs::off(),
            profiler: PhaseProfiler::off(),
            fault_plan: FaultPlan::new(),
            fault_rng: SimRng::seed_from_u64(0),
            failures: Vec::new(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &PhastlaneConfig {
        &self.cfg
    }

    /// Total waiting entries across all router buffers (diagnostics).
    pub fn buffered_packets(&self) -> usize {
        self.routers.iter().map(RouterState::waiting).sum()
    }

    /// ASCII heatmap of current buffer occupancy per router — a snapshot
    /// of where packets are parked electrically (useful when debugging
    /// drop storms).
    pub fn occupancy_heatmap(&self) -> String {
        let values: Vec<u64> = self.routers.iter().map(|r| r.waiting() as u64).collect();
        phastlane_netsim::telemetry::render_heatmap(self.cfg.mesh, &values)
    }

    fn fresh_uid(&mut self) -> u64 {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        outstanding: &mut FastMap<usize>,
        deliveries: &mut Vec<Delivery>,
        stats: &mut NetworkStats,
        energy: &mut EnergyLedger,
        obs: &mut Obs,
        flight: &mut Flight,
        at: NodeId,
        now: u64,
    ) {
        energy.on_receive();
        obs.emit(now, EventKind::Eject, at, None, Some(flight.core.id));
        let before = flight.remaining.len();
        flight.remaining.retain(|&t| t != at);
        debug_assert_eq!(
            flight.remaining.len() + 1,
            before,
            "delivery target {at} not in itinerary"
        );
        let delivered_cycle = now + 1;
        deliveries.push(Delivery {
            packet: flight.core.id,
            src: flight.core.src,
            dest: at,
            injected_cycle: flight.core.injected_cycle,
            delivered_cycle,
        });
        stats.delivered += 1;
        let lat = delivered_cycle - flight.core.injected_cycle;
        stats.latency.record(lat);
        stats.latency_by_kind.record(flight.core.kind, lat);
        let rem = outstanding
            .get_mut(flight.core.id.0)
            .expect("delivery for unknown packet");
        *rem -= 1;
        if *rem == 0 {
            outstanding.remove(flight.core.id.0);
        }
    }

    /// Receives a blocked (or interim) packet into `router`'s input-port
    /// buffer, or drops it and signals the launcher.
    #[allow(clippy::too_many_arguments)]
    fn block_flight(
        mesh: Mesh,
        routers: &mut [RouterState],
        drop_slots: &mut [Option<TargetList>],
        return_paths: &mut ReturnPathRegistry,
        stats: &mut NetworkStats,
        energy: &mut EnergyLedger,
        obs: &mut Obs,
        next_uid: &mut u64,
        flight: &mut Flight,
        flight_idx: usize,
        router: NodeId,
        entry_dir: Direction,
        now: u64,
    ) {
        debug_assert!(flight.alive);
        flight.alive = false;
        if flight.remaining.is_empty() {
            // Everything this message owed was already delivered by taps;
            // nothing to buffer or retransmit.
            return;
        }
        let qi = RouterState::input_queue(entry_dir);
        let state = &mut routers[router.index()];
        if state.has_room(qi) {
            obs.emit(
                now,
                EventKind::ElectricalFallback,
                router,
                Some(entry_dir),
                Some(flight.core.id),
            );
            energy.on_receive();
            energy.on_buffer_write();
            let uid = *next_uid;
            *next_uid += 1;
            state.push(
                qi,
                Entry {
                    uid,
                    core: flight.core,
                    targets: flight.remaining.clone(),
                    ready_at: now + 1,
                    attempts: 0,
                },
            );
        } else {
            obs.emit(
                now,
                EventKind::BufferOverflow,
                router,
                Some(entry_dir),
                Some(flight.core.id),
            );
            stats.dropped += 1;
            // The drop signal travels the registered return path in the
            // next cycle. Footnote 4: return paths of the same cycle are
            // link-disjoint by construction, because forward paths never
            // share output ports.
            let path = ReturnPath::from_forward_trail(mesh, &flight.trail);
            debug_assert_eq!(path.dropped_at(), router);
            let registered = return_paths.register(&path);
            debug_assert!(
                registered.is_ok(),
                "return paths overlapped: {registered:?}"
            );
            energy.on_drop_signal();
            debug_assert!(
                drop_slots[flight_idx].is_none(),
                "one launch cannot drop twice"
            );
            drop_slots[flight_idx] = Some(std::mem::take(&mut flight.remaining));
        }
    }

    /// The retry cap / livelock guard fired: every remaining target of
    /// `entry` becomes a terminal [`FailedDelivery`]. The packet leaves
    /// the in-flight set so closed-loop harnesses observe completion.
    fn give_up(
        outstanding: &mut FastMap<usize>,
        failures: &mut Vec<FailedDelivery>,
        stats: &mut NetworkStats,
        obs: &mut Obs,
        entry: &Entry,
        at: NodeId,
        now: u64,
    ) {
        stats.retry_exhausted += 1;
        for &dest in &entry.targets {
            stats.undeliverable += 1;
            failures.push(FailedDelivery {
                packet: entry.core.id,
                src: entry.core.src,
                dest,
                cycle: now,
            });
            obs.emit(now, EventKind::Undeliverable, at, None, Some(entry.core.id));
            let rem = outstanding
                .get_mut(entry.core.id.0)
                .expect("failure for unknown packet");
            *rem -= 1;
            if *rem == 0 {
                outstanding.remove(entry.core.id.0);
            }
        }
    }

    /// Hop reach under the current laser-droop factor: the largest hop
    /// count whose worst-case loss (at the degraded crossing efficiency)
    /// still fits the power budget provisioned for the *nominal*
    /// `max_hops` reach. Clamped to at least one hop.
    fn effective_max_hops(&self, now: u64) -> u32 {
        let factor = self.fault_plan.efficiency_factor(now);
        if factor >= 1.0 {
            return self.cfg.max_hops;
        }
        let budget = PowerPoint::new(
            self.cfg.wdm,
            self.cfg.max_hops,
            self.cfg.crossing_efficiency,
        )
        .peak_optical_power();
        let degraded = self.cfg.crossing_efficiency * factor;
        (1..=self.cfg.max_hops)
            .take_while(|&h| {
                PowerPoint::new(self.cfg.wdm, h, degraded).peak_optical_power() <= budget
            })
            .last()
            .unwrap_or(1)
    }

    /// Rolls for a transient bit error on one delivery and, when one
    /// occurs, actually runs the flipped payload through the SECDED
    /// code: single upsets come back [`Decoded::Corrected`], double
    /// upsets [`Decoded::Uncorrectable`]. Inert (no RNG draw) at rate 0.
    fn roll_bit_error(rate: f64, rng: &mut SimRng, payload: u64) -> EccOutcome {
        if rate <= 0.0 || !rng.gen_bool(rate) {
            return EccOutcome::Clean;
        }
        let mut cw = ecc::encode(payload);
        let b1 = (rng.gen_u64() % 64) as u32;
        // One error event in eight hits two bits of the same word.
        if rng.gen_bool(0.125) {
            let b2 = (b1 + 1 + (rng.gen_u64() % 63) as u32) % 64;
            cw.data ^= (1 << b1) | (1 << b2);
            debug_assert_eq!(ecc::decode(cw), Decoded::Uncorrectable);
            EccOutcome::Uncorrectable
        } else {
            cw.data ^= 1 << b1;
            debug_assert_eq!(ecc::decode(cw), Decoded::Corrected(payload));
            EccOutcome::Corrected
        }
    }
}

impl Network for PhastlaneNetwork {
    fn name(&self) -> String {
        self.cfg.label()
    }

    fn mesh(&self) -> Mesh {
        self.cfg.mesh
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn inject(&mut self, packet: NewPacket) -> Option<PacketId> {
        let nodes = self.cfg.mesh.nodes();
        let id = PacketId(self.next_packet_id);

        // Unicast fast path: synthetic sweeps inject thousands of
        // single-destination packets per run, none of which need the
        // destination-list or multicast-split allocations below.
        if let DestSet::Unicast(d) = packet.dests {
            if d != packet.src {
                let nic = &self.nics[packet.src.index()];
                if nic.len() + 1 > nic.capacity() {
                    self.obs
                        .emit(self.cycle, EventKind::NicRetry, packet.src, None, None);
                    return None;
                }
                let core = PacketCore {
                    id,
                    src: packet.src,
                    kind: packet.kind,
                    multicast: false,
                    injected_cycle: self.cycle,
                };
                let uid = self.fresh_uid();
                let entry = Entry {
                    uid,
                    core,
                    targets: [d].into_iter().collect(),
                    ready_at: self.cycle,
                    attempts: 0,
                };
                let pushed = self.nics[packet.src.index()].try_push(entry);
                assert!(pushed.is_ok(), "capacity verified above");
                self.outstanding.insert(id.0, 1);
                self.stats.injected += 1;
                self.next_packet_id += 1;
                self.obs
                    .emit(self.cycle, EventKind::Inject, packet.src, None, Some(id));
                return Some(id);
            }
        }

        let dests = packet.dests.expand(packet.src, nodes);

        if dests.is_empty() {
            // Degenerate self-send: delivered locally without the network.
            self.next_packet_id += 1;
            self.stats.injected += 1;
            self.stats.delivered += 1;
            self.obs
                .emit(self.cycle, EventKind::Inject, packet.src, None, Some(id));
            self.obs
                .emit(self.cycle, EventKind::Eject, packet.src, None, Some(id));
            self.deliveries.push(Delivery {
                packet: id,
                src: packet.src,
                dest: packet.src,
                injected_cycle: self.cycle,
                delivered_cycle: self.cycle,
            });
            return Some(id);
        }

        let multicast = dests.len() > 1;
        let messages: Vec<TargetList> = if multicast {
            split_multicast(self.cfg.mesh, packet.src, &dests)
        } else {
            vec![dests.as_slice().into()]
        };
        debug_assert!(!messages.is_empty());

        // All multicast messages of a broadcast enter the NIC atomically.
        let nic = &self.nics[packet.src.index()];
        if nic.len() + messages.len() > nic.capacity() {
            self.obs
                .emit(self.cycle, EventKind::NicRetry, packet.src, None, None);
            return None;
        }
        let core = PacketCore {
            id,
            src: packet.src,
            kind: packet.kind,
            multicast,
            injected_cycle: self.cycle,
        };
        for targets in messages {
            let uid = self.fresh_uid();
            let entry = Entry {
                uid,
                core,
                targets,
                ready_at: self.cycle,
                attempts: 0,
            };
            let pushed = self.nics[packet.src.index()].try_push(entry);
            assert!(pushed.is_ok(), "capacity verified above");
        }
        self.outstanding.insert(id.0, dests.len());
        self.stats.injected += 1;
        self.next_packet_id += 1;
        self.obs
            .emit(self.cycle, EventKind::Inject, packet.src, None, Some(id));
        Some(id)
    }

    fn step(&mut self) {
        let now = self.cycle;
        let mesh = self.cfg.mesh;
        self.return_paths.clear();
        self.profiler.begin_cycle();
        let delivered_before = self.deliveries.len();

        // Fault bookkeeping for this cycle: edge events, the hop reach
        // under laser droop, and the transient bit-error rate. Everything
        // collapses to the nominal values when no plan is installed, so an
        // empty plan is exactly zero-effect.
        let (hops, ber) = if self.fault_plan.is_empty() {
            (self.cfg.max_hops, 0.0)
        } else {
            for (fault, injected) in self.fault_plan.edges_at(now) {
                let kind = if injected {
                    EventKind::FaultInjected
                } else {
                    EventKind::FaultCleared
                };
                self.obs.emit(now, kind, fault.site(), fault.port(), None);
            }
            (
                self.effective_max_hops(now),
                self.fault_plan.bit_error_rate(now),
            )
        };
        self.profiler.mark(Phase::Fault);

        // Phase 1: confirm or revert last cycle's launches. Routers that
        // launched nothing are skipped outright; for the rest, the
        // launched list swaps into a reused scratch buffer.
        let mut scratch = std::mem::take(&mut self.confirm_scratch);
        for (r_idx, state) in self.routers.iter_mut().enumerate() {
            if !state.has_launched() {
                continue;
            }
            state.begin_confirm(&mut scratch);
            self.profiler.add_work(Phase::Drain, scratch.len() as u64);
            for &(queue, flight) in &scratch {
                let qi = usize::from(queue);
                let mut entry = state.pop_launched(qi);
                if let Some(remaining) = self.drop_slots[flight as usize].take() {
                    let launcher = NodeId(r_idx as u16);
                    self.obs.emit(
                        now,
                        EventKind::DropReturn,
                        launcher,
                        None,
                        Some(entry.core.id),
                    );
                    entry.targets = remaining;
                    if entry.attempts >= self.cfg.retry_limit {
                        Self::give_up(
                            &mut self.outstanding,
                            &mut self.failures,
                            &mut self.stats,
                            &mut self.obs,
                            &entry,
                            launcher,
                            now,
                        );
                        continue;
                    }
                    let roll = self.rng.gen_u64();
                    entry.ready_at = now + self.cfg.backoff.delay(entry.attempts, roll);
                    entry.attempts += 1;
                    self.stats.retransmitted += 1;
                    self.obs.emit(
                        now,
                        EventKind::Retransmit,
                        launcher,
                        None,
                        Some(entry.core.id),
                    );
                    state.push(qi, entry);
                }
                // else: confirmed — the slot simply frees.
            }
        }
        self.confirm_scratch = scratch;
        debug_assert!(
            self.drop_slots.iter().all(Option::is_none),
            "drop signal with no matching launch"
        );
        self.profiler.mark(Phase::Drain);

        // Phase 2: NIC -> local buffer.
        let local_q = RouterState::local_queue();
        let mut route_work = 0u64;
        for (state, nic) in self.routers.iter_mut().zip(&mut self.nics) {
            if nic.is_empty() {
                continue;
            }
            while state.has_room(local_q) {
                match nic.pop() {
                    Some(entry) => {
                        self.energy.on_buffer_write();
                        state.push(local_q, entry);
                        route_work += 1;
                    }
                    None => break,
                }
            }
        }
        self.profiler.add_work(Phase::Route, route_work);
        self.profiler.mark(Phase::Route);

        // Phase 3: rotating-priority arbitration and launch. Last
        // cycle's flights retire to the pool (keeping their buffers) and
        // the claim table rolls its epoch instead of clearing.
        self.claims.begin_cycle();
        self.n_flights = 0;
        self.drop_slots.clear();
        for r_idx in 0..self.routers.len() {
            let here = NodeId(r_idx as u16);
            // An idle router still advances its rotating-priority
            // pointer — the fast path must not change arbitration state.
            if self.routers[r_idx].waiting() == 0 {
                self.routers[r_idx].advance();
                continue;
            }
            let rotation = self.routers[r_idx].rotate();
            // Only age-based arbitration inspects the queue heads; the
            // rotating/fixed orders are pure permutations, so skip the
            // five head loads for them.
            let order = match self.cfg.arbitration {
                ArbitrationPolicy::OldestFirst => {
                    let state = &self.routers[r_idx];
                    let heads = [0, 1, 2, 3, 4].map(|q| state.head(q));
                    self.cfg.arbitration.queue_order(rotation, heads)
                }
                policy => policy.queue_order(rotation, [None; 5]),
            };
            let mut launches = 0u32;
            let mut progress = true;
            // Re-pass filter: without faults, a queue skipped in one
            // pass (empty, not ready, or claim-blocked — all invariant
            // within the cycle) cannot become launchable in a later
            // pass; only a queue that just launched exposes a new head.
            // Fault handling mutates heads in place, so it keeps the
            // full rescan.
            let fault_free = self.fault_plan.is_empty();
            let mut eligible = [true; 5];
            while launches < 4 && progress {
                progress = false;
                for &qi in &order {
                    if launches >= 4 {
                        break;
                    }
                    if fault_free && !eligible[qi] {
                        continue;
                    }
                    eligible[qi] = false;
                    if self.routers[r_idx].arbitrable() & (1 << qi) == 0 {
                        continue;
                    }
                    let Some(head) = self.routers[r_idx].head(qi) else {
                        continue;
                    };
                    if head.ready_at > now {
                        continue;
                    }
                    if !fault_free && head.targets.contains(&here) {
                        // Only an ECC-rejected optical delivery re-buffers a
                        // packet at its own target router. The electrical
                        // buffer copy is clean (SECDED covers the optical
                        // hop), so the target ejects locally instead of
                        // launching.
                        let head = self.routers[r_idx]
                            .head_mut(qi)
                            .expect("head checked above");
                        head.targets.retain(|&t| t != here);
                        let id = head.core.id;
                        let src = head.core.src;
                        let injected_cycle = head.core.injected_cycle;
                        let kind = head.core.kind;
                        let done = head.targets.is_empty();
                        self.energy.on_receive();
                        self.obs.emit(now, EventKind::Eject, here, None, Some(id));
                        let delivered_cycle = now + 1;
                        self.deliveries.push(Delivery {
                            packet: id,
                            src,
                            dest: here,
                            injected_cycle,
                            delivered_cycle,
                        });
                        self.stats.delivered += 1;
                        let lat = delivered_cycle - injected_cycle;
                        self.stats.latency.record(lat);
                        self.stats.latency_by_kind.record(kind, lat);
                        let rem = self
                            .outstanding
                            .get_mut(id.0)
                            .expect("delivery for unknown packet");
                        *rem -= 1;
                        if *rem == 0 {
                            self.outstanding.remove(id.0);
                        }
                        if done {
                            let _ = self.routers[r_idx].pop_head(qi);
                        }
                        progress = true;
                        continue;
                    }
                    let first = *head.targets.first().expect("entries keep >= 1 target");
                    let unicast = !head.core.multicast && head.targets.len() == 1;
                    let attempts = head.attempts;
                    let mut out = xy_first_hop(mesh, here, first)
                        .expect("buffered targets never equal the holding router");
                    let mut waypoint: Option<NodeId> = None;
                    if !self.fault_plan.is_empty() {
                        let stuck_here = self.fault_plan.router_stuck(now, here);
                        if stuck_here || self.fault_plan.blocked(now, mesh, here, out) {
                            // The preferred output is faulted. A unicast at
                            // a working router may detour through the other
                            // dimension if that makes real progress toward
                            // the destination; otherwise the entry backs
                            // off in place until the fault clears or the
                            // retry cap declares it undeliverable.
                            let detour = (!stuck_here && unicast)
                                .then(|| {
                                    productive_detour(&self.fault_plan, now, mesh, here, first)
                                })
                                .flatten();
                            match detour {
                                Some((dir, corner)) => {
                                    out = dir;
                                    waypoint = Some(corner);
                                }
                                None => {
                                    if attempts >= self.cfg.retry_limit {
                                        let entry = self.routers[r_idx].pop_head(qi);
                                        Self::give_up(
                                            &mut self.outstanding,
                                            &mut self.failures,
                                            &mut self.stats,
                                            &mut self.obs,
                                            &entry,
                                            here,
                                            now,
                                        );
                                    } else {
                                        // Flat jittered delay rather than the
                                        // exponential drop backoff: growth only
                                        // helps congestion decongest, and a dead
                                        // link never does. Short stalls keep the
                                        // queue moving toward the retry cap so
                                        // head-of-line entries resolve quickly.
                                        let roll = self.fault_rng.gen_u64();
                                        let delay = 1 + roll % 8;
                                        let head = self.routers[r_idx]
                                            .head_mut(qi)
                                            .expect("head checked above");
                                        head.ready_at = now + delay;
                                        head.attempts += 1;
                                        let id = head.core.id;
                                        self.obs.emit(
                                            now,
                                            EventKind::FaultStall,
                                            here,
                                            Some(out),
                                            Some(id),
                                        );
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                    if self.claims.contains(here, out) {
                        continue;
                    }
                    let flight_idx = self.n_flights;
                    if self.flights.len() == flight_idx {
                        self.flights.push(Flight::blank());
                    }
                    let entry = self.routers[r_idx].launch_head(qi, flight_idx as u32);
                    let flight = &mut self.flights[flight_idx];
                    match waypoint {
                        Some(corner) => {
                            // Detour expressed as an ordinary two-waypoint
                            // unicast plan; the corner is not tapped
                            // because the plan is not multicast.
                            flight.plan.rebuild_with(
                                &mut self.plan_dirs,
                                mesh,
                                here,
                                &[corner, first],
                                false,
                                hops,
                            );
                        }
                        None => flight.plan.rebuild_with(
                            &mut self.plan_dirs,
                            mesh,
                            here,
                            &entry.targets,
                            entry.core.multicast,
                            hops,
                        ),
                    };
                    if waypoint.is_some() {
                        self.stats.rerouted += 1;
                        self.obs.emit(
                            now,
                            EventKind::FaultReroute,
                            here,
                            Some(out),
                            Some(entry.core.id),
                        );
                    }
                    debug_assert_eq!(flight.plan.first_exit(), out);
                    debug_assert_eq!(
                        RouteControl::encode(&flight.plan).len(),
                        flight.plan.steps().len() - 1 + usize::from(flight.plan.ends_at_interim())
                    );
                    self.claims.insert(
                        here,
                        out,
                        Claim {
                            flight: flight_idx as u32,
                            step: 0,
                            rank: 0,
                        },
                    );
                    self.links.record(here, out);
                    self.obs.emit(
                        now,
                        EventKind::OpticalTransit,
                        here,
                        Some(out),
                        Some(entry.core.id),
                    );
                    flight.uid = entry.uid;
                    flight.core = entry.core;
                    flight.remaining.clone_from_list(&entry.targets);
                    flight.trail.clear();
                    flight.trail.push((here, out));
                    flight.alive = true;
                    self.n_flights += 1;
                    self.drop_slots.push(None);
                    self.energy.on_buffer_read();
                    self.energy.on_launch();
                    launches += 1;
                    progress = true;
                    eligible[qi] = true;
                }
            }
        }

        self.profiler
            .add_work(Phase::Arbitrate, self.n_flights as u64);
        self.profiler.mark(Phase::Arbitrate);

        // Phase 4: optical wavefront, hop by hop within the cycle.
        if self.profiler.is_enabled() {
            let wavefront_steps: u64 = self.flights[..self.n_flights]
                .iter()
                .map(|f| f.plan.steps().len() as u64)
                .sum();
            self.profiler.add_work(Phase::Traverse, wavefront_steps);
        }
        let max_len = self.flights[..self.n_flights]
            .iter()
            .map(|f| f.plan.steps().len())
            .max()
            .unwrap_or(0);
        for s in 1..max_len {
            for fi in 0..self.n_flights {
                let f = &self.flights[fi];
                if !f.alive {
                    continue;
                }
                let steps = f.plan.steps();
                if steps.len() <= s {
                    continue;
                }
                let step = steps[s];
                if step.tap {
                    match Self::roll_bit_error(ber, &mut self.fault_rng, self.flights[fi].uid) {
                        EccOutcome::Uncorrectable => {
                            // SECDED detected a double upset at the tap:
                            // reject the delivery and re-buffer the whole
                            // remaining itinerary for retransmission.
                            self.stats.ecc_uncorrectable += 1;
                            self.obs.emit(
                                now,
                                EventKind::EccUncorrectable,
                                step.router,
                                None,
                                Some(self.flights[fi].core.id),
                            );
                            let entry_dir = step.entry.expect("tap steps have an entry");
                            Self::block_flight(
                                mesh,
                                &mut self.routers,
                                &mut self.drop_slots,
                                &mut self.return_paths,
                                &mut self.stats,
                                &mut self.energy,
                                &mut self.obs,
                                &mut self.next_uid,
                                &mut self.flights[fi],
                                fi,
                                step.router,
                                entry_dir,
                                now,
                            );
                        }
                        outcome => {
                            if outcome == EccOutcome::Corrected {
                                self.stats.ecc_corrected += 1;
                                self.obs.emit(
                                    now,
                                    EventKind::EccCorrected,
                                    step.router,
                                    None,
                                    Some(self.flights[fi].core.id),
                                );
                            }
                            Self::deliver(
                                &mut self.outstanding,
                                &mut self.deliveries,
                                &mut self.stats,
                                &mut self.energy,
                                &mut self.obs,
                                &mut self.flights[fi],
                                step.router,
                                now,
                            );
                        }
                    }
                    if !self.flights[fi].alive {
                        continue;
                    }
                }
                match step.exit {
                    StepExit::Forward(out) => {
                        let entry_dir = step.entry.expect("hop steps have an entry");
                        if !self.fault_plan.is_empty()
                            && self.fault_plan.blocked(now, mesh, step.router, out)
                        {
                            // The wavefront ran into a faulted link or
                            // stuck router mid-flight: forced electrical
                            // fallback at this hop.
                            self.stats.rerouted += 1;
                            self.obs.emit(
                                now,
                                EventKind::FaultReroute,
                                step.router,
                                Some(out),
                                Some(self.flights[fi].core.id),
                            );
                            Self::block_flight(
                                mesh,
                                &mut self.routers,
                                &mut self.drop_slots,
                                &mut self.return_paths,
                                &mut self.stats,
                                &mut self.energy,
                                &mut self.obs,
                                &mut self.next_uid,
                                &mut self.flights[fi],
                                fi,
                                step.router,
                                entry_dir,
                                now,
                            );
                            continue;
                        }
                        let turn_class = match classify_turn(entry_dir, out) {
                            Turn::Straight => 1,
                            Turn::Left => 2,
                            Turn::Right => 3,
                        };
                        let rank = pack_rank(self.cfg.path_priority.rank(
                            turn_class,
                            entry_dir as u8,
                            now,
                        ));
                        match self.claims.get(step.router, out) {
                            None => {
                                self.claims.insert(
                                    step.router,
                                    out,
                                    Claim {
                                        flight: fi as u32,
                                        step: s as u16,
                                        rank,
                                    },
                                );
                                self.flights[fi].trail.push((step.router, out));
                                self.links.record(step.router, out);
                                self.obs.emit(
                                    now,
                                    EventKind::OpticalTransit,
                                    step.router,
                                    Some(out),
                                    Some(self.flights[fi].core.id),
                                );
                            }
                            Some(c) if c.step as usize == s && rank < c.rank => {
                                // This packet's control bits force the
                                // incumbent (a lower-priority turn) to be
                                // received at its input port.
                                self.claims.insert(
                                    step.router,
                                    out,
                                    Claim {
                                        flight: fi as u32,
                                        step: s as u16,
                                        rank,
                                    },
                                );
                                self.flights[fi].trail.push((step.router, out));
                                self.obs.emit(
                                    now,
                                    EventKind::OpticalTransit,
                                    step.router,
                                    Some(out),
                                    Some(self.flights[fi].core.id),
                                );
                                let loser = c.flight as usize;
                                let loser_step = self.flights[loser].plan.steps()[s];
                                let loser_entry =
                                    loser_step.entry.expect("incumbent arrived via a link");
                                // The incumbent never actually exits this
                                // router: undo its claim in the trail.
                                self.flights[loser].trail.pop();
                                Self::block_flight(
                                    mesh,
                                    &mut self.routers,
                                    &mut self.drop_slots,
                                    &mut self.return_paths,
                                    &mut self.stats,
                                    &mut self.energy,
                                    &mut self.obs,
                                    &mut self.next_uid,
                                    &mut self.flights[loser],
                                    loser,
                                    loser_step.router,
                                    loser_entry,
                                    now,
                                );
                            }
                            Some(_) => {
                                Self::block_flight(
                                    mesh,
                                    &mut self.routers,
                                    &mut self.drop_slots,
                                    &mut self.return_paths,
                                    &mut self.stats,
                                    &mut self.energy,
                                    &mut self.obs,
                                    &mut self.next_uid,
                                    &mut self.flights[fi],
                                    fi,
                                    step.router,
                                    entry_dir,
                                    now,
                                );
                            }
                        }
                    }
                    StepExit::Stop(StopKind::Accept) => {
                        match Self::roll_bit_error(ber, &mut self.fault_rng, self.flights[fi].uid) {
                            EccOutcome::Uncorrectable => {
                                self.stats.ecc_uncorrectable += 1;
                                self.obs.emit(
                                    now,
                                    EventKind::EccUncorrectable,
                                    step.router,
                                    None,
                                    Some(self.flights[fi].core.id),
                                );
                                let entry_dir = step.entry.expect("accept steps have an entry");
                                Self::block_flight(
                                    mesh,
                                    &mut self.routers,
                                    &mut self.drop_slots,
                                    &mut self.return_paths,
                                    &mut self.stats,
                                    &mut self.energy,
                                    &mut self.obs,
                                    &mut self.next_uid,
                                    &mut self.flights[fi],
                                    fi,
                                    step.router,
                                    entry_dir,
                                    now,
                                );
                            }
                            outcome => {
                                if outcome == EccOutcome::Corrected {
                                    self.stats.ecc_corrected += 1;
                                    self.obs.emit(
                                        now,
                                        EventKind::EccCorrected,
                                        step.router,
                                        None,
                                        Some(self.flights[fi].core.id),
                                    );
                                }
                                Self::deliver(
                                    &mut self.outstanding,
                                    &mut self.deliveries,
                                    &mut self.stats,
                                    &mut self.energy,
                                    &mut self.obs,
                                    &mut self.flights[fi],
                                    step.router,
                                    now,
                                );
                                self.flights[fi].alive = false;
                                debug_assert!(self.flights[fi].remaining.is_empty());
                            }
                        }
                    }
                    StepExit::Stop(StopKind::Interim) => {
                        let entry_dir = step.entry.expect("interim steps have an entry");
                        Self::block_flight(
                            mesh,
                            &mut self.routers,
                            &mut self.drop_slots,
                            &mut self.return_paths,
                            &mut self.stats,
                            &mut self.energy,
                            &mut self.obs,
                            &mut self.next_uid,
                            &mut self.flights[fi],
                            fi,
                            step.router,
                            entry_dir,
                            now,
                        );
                    }
                }
            }
        }

        self.profiler.mark(Phase::Traverse);

        // Phase 5: leakage, clock.
        debug_assert_eq!(
            self.stats.dropped,
            self.return_paths.signals_total(),
            "every dropped packet produces exactly one drop-return signal"
        );
        self.energy.on_cycle();
        self.cycle += 1;
        self.profiler.add_work(
            Phase::Eject,
            (self.deliveries.len() - delivered_before) as u64,
        );
        self.profiler.mark(Phase::Eject);
    }

    fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.fault_plan = plan;
        self.fault_rng = SimRng::seed_from_u64(seed);
    }

    fn drain_failures(&mut self) -> Vec<FailedDelivery> {
        std::mem::take(&mut self.failures)
    }

    fn drain_failures_into(&mut self, out: &mut Vec<FailedDelivery>) {
        out.append(&mut self.failures);
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn energy(&self) -> EnergyReport {
        self.energy.report()
    }

    fn stats(&self) -> NetworkStats {
        self.stats.clone()
    }

    fn link_counters(&self) -> LinkCounters {
        self.links.clone()
    }

    fn set_trace(&mut self, trace: TraceBuffer) {
        self.obs.attach_trace(trace);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.obs.take()
    }

    fn set_phase_profiler(&mut self, profiler: PhaseProfiler) {
        self.profiler = profiler;
    }

    fn take_phase_breakdown(&mut self) -> Option<PhaseBreakdown> {
        self.profiler.take_breakdown()
    }

    fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.obs.attach_flight(recorder);
    }

    fn take_flight_recorder(&mut self) -> Option<FlightRecorder> {
        self.obs.take_flight()
    }

    fn buffer_occupancy(&self) -> u64 {
        self.buffered_packets() as u64
    }
}
