//! Per-router electrical state: the five buffer queues (four input ports
//! plus the local node) and the rotating-priority arbiter (§2.1.1).

use crate::config::BufferDepth;
use phastlane_netsim::geometry::{Direction, Port};
use phastlane_netsim::packet::{PacketId, PacketKind, TargetList};
use phastlane_netsim::NodeId;
use std::collections::VecDeque;

/// Immutable identity of a packet message as it moves through the
/// network. A multi-destination packet becomes several messages (one per
/// multicast column message), all sharing the same [`PacketId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCore {
    /// The network-assigned packet id.
    pub id: PacketId,
    /// Originating node.
    pub src: NodeId,
    /// Operation kind.
    pub kind: PacketKind,
    /// Whether this message taps en-route targets (multicast).
    pub multicast: bool,
    /// Cycle the packet entered the source NIC.
    pub injected_cycle: u64,
}

/// One electrically-buffered message awaiting (re)launch.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Unique id for matching launches to drop signals.
    pub uid: u64,
    /// Packet identity.
    pub core: PacketCore,
    /// Remaining delivery targets, in path order.
    pub targets: TargetList,
    /// Earliest cycle this entry may launch (backoff after drops).
    pub ready_at: u64,
    /// Consecutive drops suffered by this entry (drives backoff).
    pub attempts: u32,
}

/// The electrical side of one Phastlane router.
///
/// Entries launched this cycle are *not* moved out of their queue: they
/// stay parked at the front (still holding buffer space, exactly as the
/// paper's buffers do) and only their `(queue, flight)` coordinates are
/// recorded, in launch order. Next cycle's confirm phase pops each
/// parked entry once — either freeing it (confirmed) or re-queueing it
/// with backoff (dropped) — so the hot launch path never copies an
/// [`Entry`].
#[derive(Debug, Clone)]
pub struct RouterState {
    /// Waiting entries per port (N, S, E, W, Local order per
    /// [`Port::index`]); the first `launched_per_queue[q]` entries of
    /// queue `q` are launched-but-unconfirmed.
    queues: [VecDeque<Entry>; 5],
    /// `(queue, flight-arena index)` of entries launched this cycle,
    /// awaiting the (absence of a) drop signal, in launch order.
    launched: Vec<(u8, u32)>,
    /// Launched-entry count per queue: the head for arbitration purposes
    /// is the first entry *past* that prefix.
    launched_per_queue: [u32; 5],
    /// Bitmask of queues with an arbitrable head: bit `q` is set iff
    /// `queues[q].len() > launched_per_queue[q]`. Kept in sync by every
    /// queue mutation so the arbitration scan can reject empty queues
    /// with one bit test instead of touching their storage.
    arbitrable: u8,
    /// Rotating-priority pointer over the five queues.
    rr: usize,
    /// Total waiting entries across all queues, excluding launched ones
    /// (cached; the idle-router fast path checks this every cycle).
    waiting: u32,
    depth: BufferDepth,
}

impl RouterState {
    /// Creates an empty router with the given buffer depth.
    pub fn new(depth: BufferDepth) -> Self {
        RouterState {
            queues: Default::default(),
            launched: Vec::new(),
            launched_per_queue: [0; 5],
            arbitrable: 0,
            rr: 0,
            waiting: 0,
            depth,
        }
    }

    /// Occupancy of one queue, counting launched-but-unconfirmed entries
    /// (which stay parked in the queue).
    pub fn occupancy(&self, queue: usize) -> usize {
        self.queues[queue].len()
    }

    /// Total occupancy across all queues, counting launched entries.
    pub fn total_occupancy(&self) -> usize {
        self.waiting() + self.launched.len()
    }

    /// Whether `queue` can take another entry (per-queue depth for the
    /// paper's static partition, router total for a shared pool).
    pub fn has_room(&self, queue: usize) -> bool {
        self.depth
            .has_room_with_total(self.occupancy(queue), self.total_occupancy())
    }

    /// Queue index for a packet arriving from `entry` (the input-port
    /// buffer it is received into).
    pub fn input_queue(entry: Direction) -> usize {
        Port::Dir(entry).index()
    }

    /// Queue index of the local-node buffer.
    pub fn local_queue() -> usize {
        Port::Local.index()
    }

    /// Pushes an entry onto a queue. The caller must have checked
    /// [`has_room`](Self::has_room) (infinite depths always have room).
    pub fn push(&mut self, queue: usize, entry: Entry) {
        self.queues[queue].push_back(entry);
        self.waiting += 1;
        self.arbitrable |= 1 << queue;
    }

    /// Head of a queue for arbitration purposes — the first entry past
    /// the launched prefix, if any.
    #[inline]
    pub fn head(&self, queue: usize) -> Option<&Entry> {
        self.queues[queue].get(self.launched_per_queue[queue] as usize)
    }

    /// Mutable head of a queue (used to back off an entry in place when
    /// every usable output is faulted).
    pub fn head_mut(&mut self, queue: usize) -> Option<&mut Entry> {
        self.queues[queue].get_mut(self.launched_per_queue[queue] as usize)
    }

    /// Removes and returns the head of a queue *without* marking it
    /// launched (used when the network terminally gives up on an entry).
    pub fn pop_head(&mut self, queue: usize) -> Entry {
        let e = self.queues[queue]
            .remove(self.launched_per_queue[queue] as usize)
            .expect("pop_head on empty queue");
        self.waiting -= 1;
        if self.queues[queue].len() <= self.launched_per_queue[queue] as usize {
            self.arbitrable &= !(1 << queue);
        }
        e
    }

    /// Marks the head of a queue launched as flight `flight` of this
    /// cycle's flight arena and returns a reference to it. The entry
    /// stays parked in the queue (still holding its buffer slot) until
    /// next cycle's confirm phase.
    pub fn launch_head(&mut self, queue: usize, flight: u32) -> &Entry {
        let pos = self.launched_per_queue[queue] as usize;
        assert!(pos < self.queues[queue].len(), "launch_head on empty queue");
        self.waiting -= 1;
        self.launched_per_queue[queue] += 1;
        self.launched.push((queue as u8, flight));
        if self.queues[queue].len() == self.launched_per_queue[queue] as usize {
            self.arbitrable &= !(1 << queue);
        }
        &self.queues[queue][pos]
    }

    /// Bitmask of queues whose [`head`](Self::head) is `Some` — the
    /// arbitration scan's cheap pre-filter.
    #[inline]
    pub fn arbitrable(&self) -> u8 {
        self.arbitrable
    }

    /// Whether any entries were launched last cycle (confirm-phase fast
    /// path: idle routers skip it entirely).
    pub fn has_launched(&self) -> bool {
        !self.launched.is_empty()
    }

    /// Moves the launch-order `(queue, flight)` list into `scratch`
    /// (cleared first) so the confirm phase can process it, and resets
    /// the launch bookkeeping. The two buffers swap storage, so both
    /// retain their capacity across cycles — no allocation once warm.
    /// The parked entries themselves are retrieved one by one with
    /// [`pop_launched`](Self::pop_launched).
    pub fn begin_confirm(&mut self, scratch: &mut Vec<(u8, u32)>) {
        scratch.clear();
        std::mem::swap(&mut self.launched, scratch);
        self.launched_per_queue = [0; 5];
        let mut mask = 0u8;
        for (q, queue) in self.queues.iter().enumerate() {
            if !queue.is_empty() {
                mask |= 1 << q;
            }
        }
        self.arbitrable = mask;
    }

    /// Removes and returns the oldest still-parked launched entry of a
    /// queue (its front). Valid only between
    /// [`begin_confirm`](Self::begin_confirm) and the next launch phase,
    /// once per recorded `(queue, flight)` pair — per-queue launch order
    /// matches queue order, so repeated front pops line up with the
    /// launch-order list.
    pub fn pop_launched(&mut self, queue: usize) -> Entry {
        let e = self.queues[queue]
            .pop_front()
            .expect("launched entry parked at queue front");
        if self.queues[queue].is_empty() {
            self.arbitrable &= !(1 << queue);
        }
        e
    }

    /// The queue visit order for this cycle's rotating-priority
    /// arbitration, then advances the pointer.
    #[inline]
    pub fn rotate(&mut self) -> [usize; 5] {
        const ORDERS: [[usize; 5]; 5] = [
            [0, 1, 2, 3, 4],
            [1, 2, 3, 4, 0],
            [2, 3, 4, 0, 1],
            [3, 4, 0, 1, 2],
            [4, 0, 1, 2, 3],
        ];
        let start = self.rr;
        self.advance();
        ORDERS[start]
    }

    /// Advances the rotating-priority pointer without materializing the
    /// visit order — the idle-router fast path must still rotate so the
    /// arbitration state is independent of traffic on *other* routers.
    #[inline]
    pub fn advance(&mut self) {
        self.rr = if self.rr == 4 { 0 } else { self.rr + 1 };
    }

    /// Total waiting entries across all queues (excludes launched).
    #[inline]
    pub fn waiting(&self) -> usize {
        debug_assert_eq!(
            self.waiting as usize,
            self.queues.iter().map(VecDeque::len).sum::<usize>() - self.launched.len()
        );
        self.waiting as usize
    }

    /// Iterates waiting entries of one queue.
    pub fn iter_queue(&self, queue: usize) -> impl Iterator<Item = &Entry> {
        self.queues[queue].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(uid: u64) -> Entry {
        Entry {
            uid,
            core: PacketCore {
                id: PacketId(uid),
                src: NodeId(0),
                kind: PacketKind::Data,
                multicast: false,
                injected_cycle: 0,
            },
            targets: [NodeId(1)].into_iter().collect(),
            ready_at: 0,
            attempts: 0,
        }
    }

    #[test]
    fn occupancy_counts_launched() {
        let mut r = RouterState::new(BufferDepth::Finite(2));
        r.push(0, entry(1));
        r.push(0, entry(2));
        assert!(!r.has_room(0));
        r.launch_head(0, 7);
        // Launched entry still occupies its slot, and the arbitration
        // head moves past it.
        assert_eq!(r.occupancy(0), 2);
        assert!(!r.has_room(0));
        assert!(r.has_launched());
        assert_eq!(r.head(0).unwrap().uid, 2);
        let mut scratch = Vec::new();
        r.begin_confirm(&mut scratch);
        assert_eq!(scratch, vec![(0u8, 7u32)]);
        assert!(!r.has_launched());
        let confirmed = r.pop_launched(0);
        assert_eq!(confirmed.uid, 1);
        assert_eq!(r.occupancy(0), 1);
        assert!(r.has_room(0));
    }

    #[test]
    fn rotation_cycles_through_all_queues() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        assert_eq!(r.rotate(), [0, 1, 2, 3, 4]);
        assert_eq!(r.rotate(), [1, 2, 3, 4, 0]);
        for _ in 0..3 {
            r.rotate();
        }
        assert_eq!(r.rotate(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_indices() {
        assert_eq!(RouterState::input_queue(Direction::North), 0);
        assert_eq!(RouterState::input_queue(Direction::West), 3);
        assert_eq!(RouterState::local_queue(), 4);
    }

    #[test]
    fn infinite_depth_never_full() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        for i in 0..1000 {
            assert!(r.has_room(2));
            r.push(2, entry(i));
        }
        assert_eq!(r.waiting(), 1000);
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn launch_from_empty_panics() {
        let mut r = RouterState::new(BufferDepth::Infinite);
        r.launch_head(1, 0);
    }
}
