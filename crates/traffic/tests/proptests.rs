//! Property-based tests of workload generation: codec roundtrips for
//! arbitrary traces, pattern bijectivity, and trace structural
//! invariants for arbitrary profiles.

use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::packet::PacketKind;
use phastlane_traffic::codec;
use phastlane_traffic::coherence::{generate_trace, BenchmarkProfile};
use phastlane_traffic::patterns::Pattern;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        1usize..12,          // misses per core
        0.0f64..1.0,         // write fraction
        0.0f64..1.0,         // shared fraction
        0.0f64..1.0,         // writeback fraction
        0.0f64..60.0,        // mean gap
        prop_oneof![Just(0usize), 2usize..20], // barrier phase
        0.0f64..0.9,         // hotspot weight
        1usize..6,           // outstanding
        1usize..=64,         // active cores
        any::<u64>(),        // seed
    )
        .prop_map(
            |(m, wf, sf, wbf, gap, barrier, hot, out, active, seed)| BenchmarkProfile {
                name: "prop",
                misses_per_core: m,
                write_fraction: wf,
                shared_fraction: sf,
                writeback_fraction: wbf,
                mean_gap: gap,
                barrier_every: barrier,
                hotspot_weight: hot,
                outstanding: out,
                active_cores: active,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated trace validates and roundtrips through the text
    /// codec without loss.
    #[test]
    fn codec_roundtrip_arbitrary_traces(profile in arb_profile()) {
        let trace = generate_trace(Mesh::PAPER, &profile);
        prop_assert!(trace.validate().is_ok());
        let text = codec::encode(&trace);
        let back = codec::decode(&text).expect("roundtrip decodes");
        prop_assert_eq!(trace, back);
    }

    /// Trace structure: every response has exactly one dependency (its
    /// request, at the owner), every request broadcasts, and message
    /// counts match the profile.
    #[test]
    fn trace_structure_invariants(profile in arb_profile()) {
        let trace = generate_trace(Mesh::PAPER, &profile);
        let expected_misses = profile.misses_per_core * profile.active_cores.min(64);
        let mut requests = 0usize;
        let mut responses = 0usize;
        for m in &trace.messages {
            match m.kind {
                PacketKind::ReadRequest | PacketKind::WriteRequest => {
                    requests += 1;
                    prop_assert!(m.deps.len() <= 2, "window + release at most");
                }
                PacketKind::DataResponse => {
                    responses += 1;
                    prop_assert_eq!(m.deps.len(), 1);
                }
                _ => {}
            }
        }
        prop_assert_eq!(requests, expected_misses);
        prop_assert_eq!(responses, expected_misses);
    }

    /// Determinism: the same profile yields the same trace.
    #[test]
    fn generation_deterministic(profile in arb_profile()) {
        let a = generate_trace(Mesh::PAPER, &profile);
        let b = generate_trace(Mesh::PAPER, &profile);
        prop_assert_eq!(a, b);
    }

    /// The Figure 9 permutation patterns stay bijective on any
    /// power-of-two square mesh.
    #[test]
    fn patterns_bijective(pow in 1u32..4, seed in any::<u64>()) {
        let side = 1u16 << pow;
        let mesh = Mesh::new(side, side);
        let mut rng = StdRng::seed_from_u64(seed);
        for p in [
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Shuffle,
            Pattern::Transpose,
        ] {
            let mut seen = std::collections::HashSet::new();
            for src in mesh.iter_nodes() {
                let d = p.dest(mesh, src, &mut rng);
                prop_assert!(mesh.contains(d));
                prop_assert!(seen.insert(d), "{p} not a bijection on {side}x{side}");
            }
        }
    }

    /// Pattern destinations are deterministic for the deterministic
    /// patterns (independent of the RNG).
    #[test]
    fn deterministic_patterns_ignore_rng(src in 0u16..64, s1 in any::<u64>(), s2 in any::<u64>()) {
        let mesh = Mesh::PAPER;
        let mut r1 = StdRng::seed_from_u64(s1);
        let mut r2 = StdRng::seed_from_u64(s2);
        for p in [
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Shuffle,
            Pattern::Transpose,
            Pattern::NearestNeighbor,
        ] {
            prop_assert_eq!(
                p.dest(mesh, NodeId(src), &mut r1),
                p.dest(mesh, NodeId(src), &mut r2)
            );
        }
    }
}
