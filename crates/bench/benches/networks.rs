//! Criterion microbenchmarks of the two network simulators: cycle
//! throughput under load and end-to-end replay of a small coherence
//! trace (the kernel behind Figures 10 and 11).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use phastlane_bench::Config;
use phastlane_netsim::harness::{run_trace, TraceOptions};
use phastlane_netsim::{Mesh, Network, NewPacket, NodeId};
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn loaded_network(cfg: Config) -> Box<dyn Network> {
    let mut net = cfg.build();
    for i in 0..64u16 {
        let dst = NodeId((i * 23 + 9) % 64);
        if NodeId(i) != dst {
            let _ = net.inject(NewPacket::unicast(NodeId(i), dst));
        }
    }
    net
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_step");
    for cfg in [Config::Optical4, Config::Electrical3] {
        group.bench_function(cfg.label(), |b| {
            b.iter_batched(
                || loaded_network(cfg),
                |mut net| {
                    for _ in 0..10 {
                        net.step();
                    }
                    net
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    let mut profile = splash2::benchmark("LU").expect("known benchmark");
    profile.misses_per_core = 4;
    let trace = generate_trace(Mesh::PAPER, &profile);
    let mut group = c.benchmark_group("trace_replay_lu4");
    group.sample_size(10);
    for cfg in [Config::Optical4, Config::Electrical3] {
        group.bench_function(cfg.label(), |b| {
            b.iter(|| {
                let mut net = cfg.build();
                run_trace(&mut net, &trace, TraceOptions::default()).completion_cycle
            });
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_broadcast");
    for cfg in [Config::Optical4, Config::Electrical3] {
        group.bench_function(cfg.label(), |b| {
            b.iter(|| {
                let mut net = cfg.build();
                net.inject(NewPacket::broadcast(
                    NodeId(27),
                    phastlane_netsim::PacketKind::ReadRequest,
                ))
                .expect("NIC room");
                while net.in_flight() > 0 {
                    net.step();
                }
                net.drain_deliveries().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step, bench_trace_replay, bench_broadcast);
criterion_main!(benches);
