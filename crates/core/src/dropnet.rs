//! The drop-signal return path network (§2.1.2).
//!
//! As a packet moves through the network, each router registers its
//! consumed Straight/Left/Right control bits; in the next cycle those
//! registers configure a *return path* — the packet's forward path
//! reversed — over which a router that dropped the packet transmits an
//! asserted Packet Dropped signal plus its six-bit Node ID back to the
//! responsible source.
//!
//! Footnote 4 of the paper claims return paths are collision-free by
//! construction: "each return path is unique and cannot overlap with the
//! return path of any other packet in the same cycle". This holds
//! because two forward paths can never share an output port in a cycle,
//! so their reverses never share a directed link. [`ReturnPathRegistry`]
//! checks the invariant at runtime (debug builds assert it).

use phastlane_netsim::geometry::{Direction, Mesh, NodeId, Port};
use std::fmt;

/// Bits carried by a drop signal: Packet Dropped plus the 6-bit Node ID.
pub const DROP_SIGNAL_BITS: u32 = 7;

/// The reverse route a drop signal takes from the dropping router back to
/// the launching node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnPath {
    /// Directed hops of the signal: `(router, outgoing direction)`,
    /// starting at the dropping router.
    hops: Vec<(NodeId, Direction)>,
    /// The router that dropped the packet (signal origin).
    dropped_at: NodeId,
}

impl ReturnPath {
    /// Builds the return path for a packet whose forward traversal this
    /// cycle followed `trail` — the `(router, exit direction)` pairs the
    /// packet claimed, starting at the launch router — and which was
    /// dropped at the router reached by the final trail hop.
    ///
    /// # Panics
    ///
    /// Panics if the trail walks outside the mesh.
    pub fn from_forward_trail(mesh: Mesh, trail: &[(NodeId, Direction)]) -> ReturnPath {
        let mut cursor = trail.first().map_or_else(
            || panic!("a dropped packet traversed at least one link"),
            |&(launch, _)| launch,
        );
        // Verify the trail chains and find the drop router.
        for &(router, dir) in trail {
            assert_eq!(router, cursor, "trail does not chain");
            cursor = mesh
                .neighbor(router, dir)
                .expect("forward trail stays inside the mesh");
        }
        let dropped_at = cursor;
        let hops = trail
            .iter()
            .rev()
            .scan(dropped_at, |pos, &(router, dir)| {
                let hop = (*pos, dir.opposite());
                *pos = router;
                Some(hop)
            })
            .collect();
        ReturnPath { hops, dropped_at }
    }

    /// The router that dropped the packet.
    pub fn dropped_at(&self) -> NodeId {
        self.dropped_at
    }

    /// The node the signal terminates at (the responsible launcher).
    pub fn destination(&self, mesh: Mesh) -> NodeId {
        let &(router, dir) = self.hops.last().expect("return paths have >= 1 hop");
        mesh.neighbor(router, dir)
            .expect("path stays inside the mesh")
    }

    /// Number of links the signal traverses.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path is empty (never true for a constructed path).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The directed links used, for overlap checking.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, Direction)> + '_ {
        self.hops.iter().copied()
    }
}

impl fmt::Display for ReturnPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drop@{}", self.dropped_at)?;
        for (router, dir) in &self.hops {
            write!(f, " {router}-{dir}>")?;
        }
        Ok(())
    }
}

/// Two return paths tried to use the same directed link in one cycle —
/// a violation of the paper's footnote-4 invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnPathOverlap {
    /// The contended link.
    pub link: (NodeId, Direction),
}

impl fmt::Display for ReturnPathOverlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "return paths overlap on link {}-{}>",
            self.link.0, self.link.1
        )
    }
}

impl std::error::Error for ReturnPathOverlap {}

/// Per-cycle tracker of the links used by drop signals.
///
/// Stored as an epoch-stamped dense array indexed by directed link
/// (`node * 4 + direction`): a link is in use iff its stamp equals the
/// current epoch, and `clear` is a single epoch bump instead of a hash
/// clear. The array grows on demand to the highest node registered.
#[derive(Debug)]
pub struct ReturnPathRegistry {
    stamp: Vec<u64>,
    epoch: u64,
    signals_total: u64,
}

impl Default for ReturnPathRegistry {
    fn default() -> Self {
        // Epoch starts above the zero-initialised stamps so a fresh
        // registry has no link in use.
        ReturnPathRegistry {
            stamp: Vec::new(),
            epoch: 1,
            signals_total: 0,
        }
    }
}

/// Flattened index of a directed link (matches [`Port::index`] order).
#[inline]
fn link_index(link: (NodeId, Direction)) -> usize {
    link.0.index() * 4 + Port::Dir(link.1).index()
}

impl ReturnPathRegistry {
    /// Creates an empty registry (one per cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a drop signal's path.
    ///
    /// # Errors
    ///
    /// Returns the contended link if the path overlaps a previously
    /// registered one (nothing is recorded in that case).
    pub fn register(&mut self, path: &ReturnPath) -> Result<(), ReturnPathOverlap> {
        for link in path.links() {
            let idx = link_index(link);
            if idx >= self.stamp.len() {
                self.stamp.resize(idx + 1, 0);
            }
            if self.stamp[idx] == self.epoch {
                // Undo this path's links registered before the conflict.
                // A return path never repeats a directed link, so
                // un-stamping them cannot clobber another path's claim.
                for undo in path.links() {
                    if undo == link {
                        break;
                    }
                    self.stamp[link_index(undo)] = self.epoch - 1;
                }
                return Err(ReturnPathOverlap { link });
            }
            self.stamp[idx] = self.epoch;
        }
        self.signals_total += 1;
        Ok(())
    }

    /// Clears the registry for the next cycle.
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// Number of links currently registered (a scan; diagnostics only).
    pub fn links_in_use(&self) -> usize {
        self.stamp.iter().filter(|&&s| s == self.epoch).count()
    }

    /// Cumulative count of signals registered over the registry's
    /// lifetime (not reset by [`clear`](Self::clear)). The network
    /// cross-checks this against its drop counter: every dropped packet
    /// must produce exactly one drop-return signal.
    pub fn signals_total(&self) -> u64 {
        self.signals_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    fn mesh() -> Mesh {
        Mesh::PAPER
    }

    #[test]
    fn reverse_of_straight_run() {
        // Forward: n0 -E> n1 -E> n2 -E> n3, dropped at n3.
        let trail = vec![(NodeId(0), East), (NodeId(1), East), (NodeId(2), East)];
        let rp = ReturnPath::from_forward_trail(mesh(), &trail);
        assert_eq!(rp.dropped_at(), NodeId(3));
        assert_eq!(rp.len(), 3);
        assert_eq!(rp.destination(mesh()), NodeId(0));
        let hops: Vec<_> = rp.links().collect();
        assert_eq!(
            hops,
            vec![(NodeId(3), West), (NodeId(2), West), (NodeId(1), West)]
        );
    }

    #[test]
    fn reverse_of_turning_path() {
        // Forward: (0,0) -E> (1,0) -S> (1,1), dropped at (1,1) = n9.
        let trail = vec![(NodeId(0), East), (NodeId(1), South)];
        let rp = ReturnPath::from_forward_trail(mesh(), &trail);
        assert_eq!(rp.dropped_at(), NodeId(9));
        assert_eq!(rp.destination(mesh()), NodeId(0));
        let hops: Vec<_> = rp.links().collect();
        assert_eq!(hops, vec![(NodeId(9), North), (NodeId(1), West)]);
    }

    #[test]
    fn registry_accepts_disjoint_paths() {
        let mut reg = ReturnPathRegistry::new();
        let a = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East)]);
        let b = ReturnPath::from_forward_trail(mesh(), &[(NodeId(8), East)]);
        reg.register(&a).expect("disjoint");
        reg.register(&b).expect("disjoint");
        assert_eq!(reg.links_in_use(), 2);
    }

    #[test]
    fn registry_rejects_overlap() {
        let mut reg = ReturnPathRegistry::new();
        let a = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East), (NodeId(1), East)]);
        // Same forward link n1 -E> n2 gives the same return link.
        let b = ReturnPath::from_forward_trail(mesh(), &[(NodeId(1), East)]);
        reg.register(&a).expect("first is fine");
        let err = reg.register(&b).expect_err("overlap on n2 -W> n1");
        assert_eq!(err.link, (NodeId(2), West));
        assert_eq!(reg.signals_total(), 1, "a rejected path is not counted");
        reg.clear();
        assert_eq!(reg.links_in_use(), 0);
    }

    #[test]
    fn signal_count_survives_per_cycle_clear() {
        // The cumulative counter is the accounting hook: one signal per
        // registered path, across cycles, unaffected by clear().
        let mut reg = ReturnPathRegistry::new();
        let a = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East)]);
        let b = ReturnPath::from_forward_trail(mesh(), &[(NodeId(8), East)]);
        reg.register(&a).expect("ok");
        reg.clear();
        reg.register(&b).expect("ok");
        reg.clear();
        assert_eq!(reg.signals_total(), 2);
        assert_eq!(reg.links_in_use(), 0);
    }

    #[test]
    fn opposite_direction_links_do_not_collide() {
        // n0 -E> n1 forward and n1 -E> ... the return uses (1, West) vs
        // (2, West): distinct directed links even on the same wire pair.
        let mut reg = ReturnPathRegistry::new();
        let a = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East)]);
        let b = ReturnPath::from_forward_trail(mesh(), &[(NodeId(2), West)]);
        reg.register(&a).expect("ok");
        reg.register(&b)
            .expect("opposite senses are distinct links");
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_trail_rejected() {
        let _ = ReturnPath::from_forward_trail(mesh(), &[]);
    }

    #[test]
    #[should_panic(expected = "does not chain")]
    fn broken_trail_rejected() {
        let _ = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East), (NodeId(5), East)]);
    }

    #[test]
    fn display_is_readable() {
        let rp = ReturnPath::from_forward_trail(mesh(), &[(NodeId(0), East)]);
        let s = rp.to_string();
        assert!(s.contains("drop@n1"));
        assert!(s.contains("n1-W>"));
    }
}
