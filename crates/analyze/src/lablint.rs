//! Lab-spec lint and the `lab run --preflight` gate.
//!
//! [`lint_spec`] statically examines an expanded job matrix and reports
//! findings at two levels:
//!
//! * **Error** — the matrix is statically doomed: a fault plan
//!   partitions pairs that the cell's traffic pattern will address
//!   (guaranteed `Undeliverable` outcomes), the drooped laser cannot
//!   close even one hop, a sabotage index lies outside the matrix, or a
//!   pattern would panic on this mesh. [`preflight`] refuses such specs.
//! * **Warning** — the run is legal but suspicious: a cycle budget
//!   shorter than warm-up plus measurement, a zero retry cap on a
//!   faulted matrix, or a channel-dependency cycle introduced by detour
//!   turns (survivable here because Phastlane drops and retries instead
//!   of holding links while waiting, but worth knowing about).
//!
//! The fault plans inspected are exactly the plans the runner would
//! build: `FaultPlan::random(mesh, fault_seed, intensity)` with the
//! fault seed derived the same way [`phastlane_lab::spec::expand`] does,
//! under the worst-case view of [`crate::cdg`] (every scheduled fault
//! treated as permanent).

use crate::cdg::Cdg;
use crate::reach::{optical_envelope, residual_connectivity};
use phastlane_lab::spec::{derive_seed, LabSpec};
use phastlane_netsim::fault::FaultPlan;
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::rng::SimRng;
use phastlane_traffic::Pattern;

/// Severity of a spec finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// The matrix cannot produce the results it asks for.
    Error,
    /// Legal but suspicious; the run proceeds.
    Warning,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warning => "warning",
        })
    }
}

/// One static finding about a lab spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFinding {
    /// Severity.
    pub level: Level,
    /// The matrix slice the finding applies to, if not spec-global
    /// (e.g. `"net=optical4 pattern=transpose intensity=0.3 replica=0"`).
    pub cell: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SpecFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(cell) => write!(f, "{}: [{cell}] {}", self.level, self.message),
            None => write!(f, "{}: {}", self.level, self.message),
        }
    }
}

impl SpecFinding {
    fn error(cell: Option<String>, message: String) -> SpecFinding {
        SpecFinding {
            level: Level::Error,
            cell,
            message,
        }
    }

    fn warning(cell: Option<String>, message: String) -> SpecFinding {
        SpecFinding {
            level: Level::Warning,
            cell,
            message,
        }
    }
}

/// The pair set a pattern statically addresses: `None` means "assume
/// every pair" (randomized patterns).
type PatternPairs = Option<Vec<(NodeId, NodeId)>>;

/// The ordered (src, dst) pairs a pattern addresses on `mesh`, or
/// `None` when the pattern is randomized (uniform, hotspot) and must be
/// assumed to address every pair eventually.
fn pattern_pairs(pattern: Pattern, mesh: Mesh) -> PatternPairs {
    match pattern {
        Pattern::Uniform | Pattern::Hotspot { .. } => None,
        _ => {
            // Deterministic patterns ignore the RNG; any seed works.
            let mut rng = SimRng::seed_from_u64(0);
            Some(
                mesh.iter_nodes()
                    .filter_map(|src| {
                        let dst = pattern.dest(mesh, src, &mut rng);
                        (dst != src).then_some((src, dst))
                    })
                    .collect(),
            )
        }
    }
}

fn fmt_pairs(pairs: &[(NodeId, NodeId)]) -> String {
    const SHOW: usize = 4;
    let shown: Vec<String> = pairs
        .iter()
        .take(SHOW)
        .map(|(s, d)| format!("{s}->{d}"))
        .collect();
    if pairs.len() > SHOW {
        format!("{} (+{} more)", shown.join(" "), pairs.len() - SHOW)
    } else {
        shown.join(" ")
    }
}

/// Statically lints an expanded spec. Findings are deterministic and
/// ordered: spec-global checks first, then faulted cells in matrix
/// order (intensity outer, replica inner).
pub fn lint_spec(spec: &LabSpec) -> Vec<SpecFinding> {
    let mut findings = Vec::new();
    let mesh = spec.mesh;

    for s in &spec.sabotage {
        if s.index >= spec.job_count() {
            findings.push(SpecFinding::error(
                None,
                format!(
                    "sabotage index {} outside the {}-job matrix",
                    s.index,
                    spec.job_count()
                ),
            ));
        }
    }

    if !spec.patterns.is_empty() && !mesh.nodes().is_power_of_two() {
        findings.push(SpecFinding::error(
            None,
            format!(
                "synthetic patterns need a power-of-two node count, mesh is {}x{} = {} nodes",
                mesh.width(),
                mesh.height(),
                mesh.nodes()
            ),
        ));
        // Everything below calls into the pattern machinery; stop here.
        return findings;
    }

    if let Some(budget) = spec.cycle_budget {
        let horizon = spec.warmup + spec.measure;
        if budget < horizon {
            findings.push(SpecFinding::warning(
                None,
                format!(
                    "cycle-budget {budget} is below warmup+measure = {horizon}; \
                     every synthetic job will time out"
                ),
            ));
        }
    }

    let faulted = spec.intensities.iter().any(|&i| i > 0.0);
    if spec.retry_limit == Some(0) && faulted {
        findings.push(SpecFinding::warning(
            None,
            "retry-limit 0 on a faulted matrix: any dropped packet is \
             immediately undeliverable"
                .to_string(),
        ));
    }

    // Per-pattern address sets are fault-independent; compute them once.
    let pairs_by_pattern: Vec<(Pattern, PatternPairs)> = spec
        .patterns
        .iter()
        .map(|&p| (p, pattern_pairs(p, mesh)))
        .collect();

    for &intensity in &spec.intensities {
        if intensity <= 0.0 {
            continue;
        }
        for replica in 0..spec.replicas {
            let fault_seed = derive_seed(spec.seed, 0xFA17_0000 + u64::from(replica));
            let plan = FaultPlan::random(mesh, fault_seed, intensity);
            let slice =
                |extra: &str| Some(format!("intensity={intensity} replica={replica}{extra}"));

            for net in &spec.nets {
                match optical_envelope(net, mesh, &plan) {
                    Ok(Some(env)) if !env.feasible() => {
                        findings.push(SpecFinding::error(
                            slice(&format!(" net={net}")),
                            format!(
                                "laser droop {:.4} leaves 0 effective hops of the \
                                 provisioned {}: optically infeasible",
                                env.droop_factor, env.max_hops
                            ),
                        ));
                    }
                    Ok(_) => {}
                    Err(e) => findings.push(SpecFinding::error(slice(&format!(" net={net}")), e)),
                }
            }

            let residual = residual_connectivity(mesh, &plan);
            if !residual.fully_connected() {
                let benchmarks_present = !spec.benchmarks.is_empty();
                for (pattern, pairs) in &pairs_by_pattern {
                    let doomed: Vec<(NodeId, NodeId)> = match pairs {
                        Some(pairs) => pairs
                            .iter()
                            .filter(|p| residual.partitioned.contains(p))
                            .copied()
                            .collect(),
                        // Randomized patterns address every pair
                        // eventually; any partition dooms them.
                        None => residual.partitioned.clone(),
                    };
                    if !doomed.is_empty() {
                        findings.push(SpecFinding::error(
                            slice(&format!(" pattern={}", pattern.name())),
                            format!(
                                "fault plan statically partitions {} of the pattern's \
                                 pairs: {}",
                                doomed.len(),
                                fmt_pairs(&doomed)
                            ),
                        ));
                    }
                }
                if benchmarks_present {
                    findings.push(SpecFinding::error(
                        slice(" work=replay"),
                        format!(
                            "fault plan statically partitions {} of {} pairs; replay \
                             traces address arbitrary pairs: {}",
                            residual.partitioned.len(),
                            residual.total_pairs,
                            fmt_pairs(&residual.partitioned)
                        ),
                    ));
                }
            }

            let cdg = Cdg::of_mesh_xy(mesh, &plan);
            if let Some(witness) = cdg.shortest_cycle() {
                let cycle: Vec<String> = witness.iter().map(|c| c.to_string()).collect();
                findings.push(SpecFinding::warning(
                    slice(""),
                    format!(
                        "detour turns close a {}-channel dependency cycle ({}); \
                         survivable under drop-and-retry, impossible under \
                         hold-and-wait",
                        witness.len(),
                        cycle.join(" -> ")
                    ),
                ));
            }
        }
    }

    findings
}

/// The preflight gate behind `lab run --preflight`: lints the spec and
/// refuses to run when any finding is an error.
///
/// # Errors
///
/// Returns the error findings, one per line, when the matrix is
/// statically doomed.
pub fn preflight(spec: &LabSpec) -> Result<Vec<SpecFinding>, String> {
    let findings = lint_spec(spec);
    let errors: Vec<String> = findings
        .iter()
        .filter(|f| f.level == Level::Error)
        .map(SpecFinding::to_string)
        .collect();
    if errors.is_empty() {
        Ok(findings)
    } else {
        Err(format!(
            "preflight: spec {:?} is statically doomed:\n{}",
            spec.name,
            errors.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> LabSpec {
        LabSpec::parse(text).unwrap()
    }

    #[test]
    fn clean_spec_has_no_findings() {
        let spec = parse("mesh 4x4\nnets optical4\npatterns transpose\n");
        assert_eq!(lint_spec(&spec), Vec::new());
        assert!(preflight(&spec).is_ok());
    }

    #[test]
    fn committed_style_fault_free_specs_pass() {
        let spec = parse(
            "name smoke\nmesh 8x8\nseed 7\nnets optical4 electrical3\n\
             patterns uniform transpose\nrates 0.02 0.1\nreplicas 2\n",
        );
        assert!(preflight(&spec).is_ok());
    }

    #[test]
    fn out_of_range_sabotage_is_an_error() {
        let spec = parse("mesh 4x4\nsabotage panic@999\n");
        let findings = lint_spec(&spec);
        assert!(findings
            .iter()
            .any(|f| f.level == Level::Error && f.message.contains("sabotage index 999")));
        assert!(preflight(&spec).is_err());
    }

    #[test]
    fn non_power_of_two_mesh_with_patterns_is_an_error() {
        let spec = parse("mesh 3x3\npatterns transpose\n");
        let findings = lint_spec(&spec);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].level, Level::Error);
        assert!(findings[0].message.contains("power-of-two"));
    }

    #[test]
    fn short_cycle_budget_is_a_warning() {
        let spec = parse("mesh 4x4\nwarmup 500\nmeasure 2000\ncycle-budget 100\n");
        let findings = lint_spec(&spec);
        assert!(findings
            .iter()
            .any(|f| f.level == Level::Warning && f.message.contains("cycle-budget 100")));
        // Warnings alone never fail preflight.
        assert!(preflight(&spec).is_ok());
    }

    #[test]
    fn zero_retry_limit_on_faulted_matrix_warns() {
        let spec = parse("mesh 4x4\nretry-limit 0\nintensities 0.1\npatterns transpose\n");
        let findings = lint_spec(&spec);
        assert!(findings
            .iter()
            .any(|f| f.level == Level::Warning && f.message.contains("retry-limit 0")));
    }

    #[test]
    fn heavy_faults_statically_doom_the_matrix() {
        // Intensity 1.0 activates every samplable fault; on a 4x4 mesh
        // the worst-case static view partitions pairs (and likely
        // starves the laser), so preflight must refuse with a non-empty
        // error listing.
        let spec = parse("mesh 4x4\nseed 7\nnets optical4\npatterns transpose\nintensities 1.0\n");
        let err = preflight(&spec).unwrap_err();
        assert!(err.contains("statically doomed"), "{err}");
        assert!(err.contains("error:"), "{err}");
    }

    #[test]
    fn deterministic_pattern_doom_lists_exact_pairs() {
        // Find an intensity that partitions at least one transpose pair
        // on the default seed; the finding must carry concrete pairs.
        let mut hit = None;
        for intensity in [0.4, 0.6, 0.8, 1.0] {
            let spec = parse(&format!(
                "mesh 4x4\nseed 7\nnets electrical2\npatterns transpose\nintensities {intensity}\n"
            ));
            let findings = lint_spec(&spec);
            if let Some(f) = findings
                .iter()
                .find(|f| f.level == Level::Error && f.message.contains("partitions"))
            {
                hit = Some(f.clone());
                break;
            }
        }
        let f = hit.expect("some intensity partitions a transpose pair");
        assert!(f.message.contains("->"), "{}", f.message);
        assert!(f
            .cell
            .as_deref()
            .unwrap_or("")
            .contains("pattern=transpose"));
    }

    #[test]
    fn findings_are_deterministic() {
        let spec = parse("mesh 4x4\nseed 7\nnets optical4\npatterns transpose\nintensities 0.8\n");
        assert_eq!(lint_spec(&spec), lint_spec(&spec));
    }
}
