//! Synthetic traffic permutation patterns (§4, Figure 9) plus the usual
//! extras (uniform random, hotspot, nearest neighbour).
//!
//! Destinations are computed on the node index bits (6 bits for the
//! paper's 64-node mesh), following the standard Dally & Towles
//! definitions Booksim uses.

use phastlane_netsim::geometry::{Coord, Mesh, NodeId};
use phastlane_netsim::rng::SimRng;
use std::fmt;

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniformly random destination.
    Uniform,
    /// Destination is the bitwise complement of the source index.
    BitComplement,
    /// Destination is the bit-reversed source index.
    BitReverse,
    /// Destination is the source index rotated left by one bit (perfect
    /// shuffle).
    Shuffle,
    /// Destination is the matrix transpose of the source coordinate.
    Transpose,
    /// A fraction of traffic goes to one hot node, the rest uniform.
    Hotspot {
        /// The hot node.
        target: NodeId,
        /// Fraction of packets aimed at the hot node.
        fraction: f64,
    },
    /// Destination is the next node in row-major order (wrapping).
    NearestNeighbor,
}

impl Pattern {
    /// The four patterns of Figure 9, in the paper's order.
    pub const FIGURE9: [Pattern; 4] = [
        Pattern::BitComplement,
        Pattern::BitReverse,
        Pattern::Shuffle,
        Pattern::Transpose,
    ];

    /// Computes the destination for a packet from `src`.
    ///
    /// Permutation patterns may map a node to itself (e.g. the diagonal
    /// under transpose); callers typically skip such packets.
    ///
    /// # Panics
    ///
    /// Panics if the mesh node count is not a power of two (the bit
    /// permutations are defined on index bits), or `src` is out of range.
    pub fn dest(self, mesh: Mesh, src: NodeId, rng: &mut SimRng) -> NodeId {
        let n = mesh.nodes();
        assert!(
            n.is_power_of_two(),
            "bit patterns need a power-of-two node count"
        );
        assert!(mesh.contains(src), "source {src} outside mesh");
        let bits = n.trailing_zeros();
        let i = src.index();
        let d = match self {
            Pattern::Uniform => rng.gen_range(0..n),
            Pattern::BitComplement => !i & (n - 1),
            Pattern::BitReverse => {
                let mut r = 0usize;
                for b in 0..bits {
                    if i & (1 << b) != 0 {
                        r |= 1 << (bits - 1 - b);
                    }
                }
                r
            }
            Pattern::Shuffle => ((i << 1) | (i >> (bits - 1))) & (n - 1),
            Pattern::Transpose => {
                let c = mesh.coord(src);
                return mesh.node_at(Coord { x: c.y, y: c.x });
            }
            Pattern::Hotspot { target, fraction } => {
                if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    return target;
                }
                rng.gen_range(0..n)
            }
            Pattern::NearestNeighbor => (i + 1) % n,
        };
        NodeId(d as u16)
    }

    /// Parses a pattern from its CLI/spec-file name (`uniform`,
    /// `bitcomp`, `bitrev`, `shuffle`, `transpose`, `neighbor`,
    /// `hotspot`), case-insensitively. The hotspot pattern uses its
    /// conventional parameters (node 0, 30 % of traffic).
    pub fn from_name(name: &str) -> Option<Pattern> {
        Some(match name.to_ascii_lowercase().as_str() {
            "uniform" => Pattern::Uniform,
            "bitcomp" => Pattern::BitComplement,
            "bitrev" => Pattern::BitReverse,
            "shuffle" => Pattern::Shuffle,
            "transpose" => Pattern::Transpose,
            "neighbor" => Pattern::NearestNeighbor,
            "hotspot" => Pattern::Hotspot {
                target: NodeId(0),
                fraction: 0.3,
            },
            _ => return None,
        })
    }

    /// The `from_name` spelling of this pattern (its canonical
    /// spec-file/CLI token).
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::BitComplement => "bitcomp",
            Pattern::BitReverse => "bitrev",
            Pattern::Shuffle => "shuffle",
            Pattern::Transpose => "transpose",
            Pattern::Hotspot { .. } => "hotspot",
            Pattern::NearestNeighbor => "neighbor",
        }
    }

    /// The label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Uniform => "Uniform",
            Pattern::BitComplement => "Bit Comp",
            Pattern::BitReverse => "Bit Reverse",
            Pattern::Shuffle => "Shuffle",
            Pattern::Transpose => "Transpose",
            Pattern::Hotspot { .. } => "Hotspot",
            Pattern::NearestNeighbor => "Neighbor",
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn names_roundtrip_through_from_name() {
        for p in [
            Pattern::Uniform,
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Shuffle,
            Pattern::Transpose,
            Pattern::NearestNeighbor,
        ] {
            assert_eq!(Pattern::from_name(p.name()), Some(p));
        }
        assert!(matches!(
            Pattern::from_name("HOTSPOT"),
            Some(Pattern::Hotspot { .. })
        ));
        assert_eq!(Pattern::from_name("warp"), None);
    }

    #[test]
    fn bit_complement_examples() {
        let m = Mesh::PAPER;
        let mut r = rng();
        assert_eq!(
            Pattern::BitComplement.dest(m, NodeId(0), &mut r),
            NodeId(63)
        );
        assert_eq!(
            Pattern::BitComplement.dest(m, NodeId(21), &mut r),
            NodeId(42)
        );
    }

    #[test]
    fn bit_reverse_examples() {
        let m = Mesh::PAPER;
        let mut r = rng();
        // 0b000001 -> 0b100000
        assert_eq!(Pattern::BitReverse.dest(m, NodeId(1), &mut r), NodeId(32));
        // Palindromic index maps to itself.
        assert_eq!(
            Pattern::BitReverse.dest(m, NodeId(0b100001), &mut r),
            NodeId(0b100001)
        );
    }

    #[test]
    fn shuffle_rotates_left() {
        let m = Mesh::PAPER;
        let mut r = rng();
        assert_eq!(Pattern::Shuffle.dest(m, NodeId(1), &mut r), NodeId(2));
        assert_eq!(Pattern::Shuffle.dest(m, NodeId(32), &mut r), NodeId(1));
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = Mesh::PAPER;
        let mut r = rng();
        let src = m.node_at(Coord { x: 2, y: 5 });
        let dst = m.node_at(Coord { x: 5, y: 2 });
        assert_eq!(Pattern::Transpose.dest(m, src, &mut r), dst);
        // Diagonal is a fixed point.
        let diag = m.node_at(Coord { x: 3, y: 3 });
        assert_eq!(Pattern::Transpose.dest(m, diag, &mut r), diag);
    }

    #[test]
    fn permutations_are_bijections() {
        let m = Mesh::PAPER;
        let mut r = rng();
        for p in [
            Pattern::BitComplement,
            Pattern::BitReverse,
            Pattern::Shuffle,
            Pattern::Transpose,
        ] {
            let mut seen = std::collections::HashSet::new();
            for src in m.iter_nodes() {
                assert!(seen.insert(p.dest(m, src, &mut r)), "{p} not a bijection");
            }
            assert_eq!(seen.len(), 64);
        }
    }

    #[test]
    fn hotspot_biases_toward_target() {
        let m = Mesh::PAPER;
        let mut r = rng();
        let p = Pattern::Hotspot {
            target: NodeId(9),
            fraction: 0.8,
        };
        let hits = (0..1000)
            .filter(|_| p.dest(m, NodeId(0), &mut r) == NodeId(9))
            .count();
        assert!(hits > 700, "hotspot hits {hits}/1000");
    }

    #[test]
    fn uniform_stays_in_range() {
        let m = Mesh::PAPER;
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.contains(Pattern::Uniform.dest(m, NodeId(5), &mut r)));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_mesh_rejected() {
        let m = Mesh::new(3, 3);
        let mut r = rng();
        let _ = Pattern::BitComplement.dest(m, NodeId(0), &mut r);
    }
}
