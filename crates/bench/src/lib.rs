//! Shared experiment harness for the figure-regeneration binaries
//! (`src/bin/fig*.rs`) and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation maps to one binary;
//! see `DESIGN.md` for the index and `EXPERIMENTS.md` for recorded
//! results.

pub mod chart;
pub mod report;
pub mod timing;

use phastlane_core::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_netsim::harness::{run_trace, Trace, TraceOptions, TraceResult};
use phastlane_netsim::network::Network;
use phastlane_netsim::stats::NetworkStats;

/// Network clock in GHz (4 GHz throughout the paper).
pub const CLOCK_GHZ: f64 = 4.0;

/// A network configuration under evaluation, by figure label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Phastlane, 4 hops/cycle, 10 buffers.
    Optical4,
    /// Phastlane, 5 hops/cycle.
    Optical5,
    /// Phastlane, 8 hops/cycle.
    Optical8,
    /// Phastlane, 4 hops, 32 buffer entries.
    Optical4B32,
    /// Phastlane, 4 hops, 64 buffer entries.
    Optical4B64,
    /// Phastlane, 4 hops, infinite buffers.
    Optical4IB,
    /// Electrical baseline, 3-cycle router.
    Electrical3,
    /// Electrical baseline, 2-cycle router.
    Electrical2,
}

impl Config {
    /// All configurations of Figures 10 and 11, baseline last.
    pub const FIGURE10: [Config; 8] = [
        Config::Optical4,
        Config::Optical5,
        Config::Optical8,
        Config::Optical4B32,
        Config::Optical4B64,
        Config::Optical4IB,
        Config::Electrical2,
        Config::Electrical3,
    ];

    /// The configurations swept in Figure 9.
    pub const FIGURE9: [Config; 5] = [
        Config::Optical4,
        Config::Optical5,
        Config::Optical8,
        Config::Electrical2,
        Config::Electrical3,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Optical4 => "Optical4",
            Config::Optical5 => "Optical5",
            Config::Optical8 => "Optical8",
            Config::Optical4B32 => "Optical4B32",
            Config::Optical4B64 => "Optical4B64",
            Config::Optical4IB => "Optical4IB",
            Config::Electrical3 => "Electrical3",
            Config::Electrical2 => "Electrical2",
        }
    }

    /// Builds a fresh network of this configuration.
    pub fn build(self) -> Box<dyn Network> {
        match self {
            Config::Optical4 => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4())),
            Config::Optical5 => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical5())),
            Config::Optical8 => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical8())),
            Config::Optical4B32 => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4_b32())),
            Config::Optical4B64 => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4_b64())),
            Config::Optical4IB => Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4_ib())),
            Config::Electrical3 => {
                Box::new(ElectricalNetwork::new(ElectricalConfig::electrical3()))
            }
            Config::Electrical2 => {
                Box::new(ElectricalNetwork::new(ElectricalConfig::electrical2()))
            }
        }
    }
}

/// Outcome of replaying one trace on one configuration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Configuration label.
    pub config: Config,
    /// Trace replay result.
    pub result: TraceResult,
    /// Network counters (drops, retransmissions).
    pub stats: NetworkStats,
}

impl RunOutcome {
    /// Average network power over the run, in milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        self.result
            .energy
            .average_power_mw(self.result.completion_cycle.max(1), CLOCK_GHZ)
    }
}

/// Replays `trace` on a fresh network of `config`.
pub fn run_on(config: Config, trace: &Trace) -> RunOutcome {
    let mut net = config.build();
    let result = run_trace(&mut net, trace, TraceOptions::default());
    RunOutcome {
        config,
        result,
        stats: net.stats(),
    }
}

/// Scales a benchmark's size for quick runs: `1.0` is the full trace.
pub fn scaled_profile(
    profile: &phastlane_traffic::BenchmarkProfile,
    scale: f64,
) -> phastlane_traffic::BenchmarkProfile {
    let mut p = profile.clone();
    p.misses_per_core = ((p.misses_per_core as f64 * scale).round() as usize).max(2);
    p
}

/// Parses the common `--quick` flag used by the figure binaries.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a row of fixed-width columns.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Config::FIGURE10.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn build_matches_label() {
        for c in Config::FIGURE10 {
            assert_eq!(c.build().name(), c.label());
        }
    }
}
