//! Per-cell wall-clock breakdown of the fig9-perf sweep grid: which
//! pattern × rate cells dominate the BENCH trajectory workload, so perf
//! work targets the cells that actually move `cycles_per_sec`.
//!
//! Run with: `cargo run --release --example cell_walls`
use phastlane_repro::netsim::harness::{run_synthetic_observed, SyntheticOptions};
use phastlane_repro::netsim::Mesh;
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::{BernoulliTraffic, Pattern};
use std::time::Instant;

fn main() {
    let opts = SyntheticOptions {
        warmup: 500,
        measure: 3000,
        drain: 4000,
    };
    let mut total_wall = 0.0f64;
    let mut total_cycles = 0u64;
    for pattern in [
        Pattern::Uniform,
        Pattern::Transpose,
        Pattern::from_name("hotspot").unwrap(),
    ] {
        for rate in [0.02f64, 0.05, 0.10, 0.20] {
            let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
            let mut workload = BernoulliTraffic::new(Mesh::PAPER, pattern, rate, 42);
            let t = Instant::now();
            let res = run_synthetic_observed(&mut net, &mut workload, opts, None);
            let wall = t.elapsed().as_secs_f64();
            let cycles = res.perf.cycles;
            total_wall += wall;
            total_cycles += cycles;
            println!(
                "{pattern:?} {rate:.2}: {cycles} cycles, {:.1} ms, {:.2} us/cycle",
                wall * 1e3,
                wall * 1e6 / cycles as f64
            );
        }
    }
    println!(
        "total: {total_cycles} cycles, {:.1} ms -> {:.0} cycles/s (1 replica each)",
        total_wall * 1e3,
        total_cycles as f64 / total_wall
    );
}
