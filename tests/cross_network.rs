//! Integration tests driving both network implementations through the
//! shared harness with the same workloads.

use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::harness::{run_trace, TraceOptions};
use phastlane_repro::netsim::packet::PacketKind;
use phastlane_repro::netsim::{Mesh, Network, NewPacket, NodeId};
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::coherence::generate_trace;
use phastlane_repro::traffic::splash2;

fn small_trace(name: &str) -> phastlane_repro::netsim::harness::Trace {
    let mut profile = splash2::benchmark(name).expect("known benchmark");
    profile.misses_per_core = 6;
    generate_trace(Mesh::PAPER, &profile)
}

#[test]
fn both_networks_complete_the_same_trace() {
    let trace = small_trace("LU");
    let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let o = run_trace(&mut optical, &trace, TraceOptions::default());
    let e = run_trace(&mut electrical, &trace, TraceOptions::default());
    assert!(!o.timed_out && !e.timed_out);
    assert_eq!(o.completed, trace.len() as u64);
    assert_eq!(e.completed, trace.len() as u64);
}

#[test]
fn optical_finishes_coherence_traces_faster() {
    // The paper's headline: Phastlane outperforms the electrical baseline
    // on every benchmark that is not buffer-starved.
    for name in ["FFT", "Raytrace", "Water-NSquared"] {
        let trace = small_trace(name);
        let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());
        let o = run_trace(&mut optical, &trace, TraceOptions::default());
        let e = run_trace(&mut electrical, &trace, TraceOptions::default());
        assert!(
            o.completion_cycle < e.completion_cycle,
            "{name}: optical {} vs electrical {}",
            o.completion_cycle,
            e.completion_cycle
        );
    }
}

#[test]
fn optical_uses_less_energy_per_trace() {
    let trace = small_trace("Barnes");
    let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());
    let o = run_trace(&mut optical, &trace, TraceOptions::default());
    let e = run_trace(&mut electrical, &trace, TraceOptions::default());
    assert!(
        o.energy.total_pj() < 0.5 * e.energy.total_pj(),
        "optical {} pJ vs electrical {} pJ",
        o.energy.total_pj(),
        e.energy.total_pj()
    );
}

#[test]
fn deliveries_identical_across_networks() {
    // Same packets in, same (packet, destination) deliveries out.
    let drive = |net: &mut dyn Network| {
        let mut injected = Vec::new();
        for i in (0..64u16).step_by(3) {
            let src = NodeId(i);
            let dst = NodeId((i * 7 + 11) % 64);
            if src != dst {
                let id = net.inject(NewPacket::unicast(src, dst)).expect("NIC room");
                injected.push((id, dst));
            }
        }
        net.inject(NewPacket::broadcast(NodeId(9), PacketKind::Invalidate))
            .expect("NIC room");
        while net.in_flight() > 0 {
            net.step();
            assert!(net.cycle() < 10_000);
        }
        let mut dests: Vec<(u16, u16)> = net
            .drain_deliveries()
            .iter()
            .map(|d| (d.src.0, d.dest.0))
            .collect();
        dests.sort_unstable();
        dests
    };
    let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());
    assert_eq!(drive(&mut optical), drive(&mut electrical));
}

#[test]
fn trace_replay_is_deterministic() {
    let trace = small_trace("Ocean");
    let run = || {
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        run_trace(&mut net, &trace, TraceOptions::default()).completion_cycle
    };
    assert_eq!(run(), run());
}

#[test]
fn bigger_buffers_never_hurt_bursty_traces() {
    let trace = small_trace("FMM");
    let completion = |cfg: PhastlaneConfig| {
        let mut net = PhastlaneNetwork::new(cfg);
        run_trace(&mut net, &trace, TraceOptions::default()).completion_cycle
    };
    let base = completion(PhastlaneConfig::optical4());
    let b64 = completion(PhastlaneConfig::optical4_b64());
    let ib = completion(PhastlaneConfig::optical4_ib());
    // Allow a small tolerance: arbitration order changes slightly, but
    // big buffers must not be significantly worse.
    assert!(b64 as f64 <= base as f64 * 1.10, "B64 {b64} vs base {base}");
    assert!(ib as f64 <= base as f64 * 1.10, "IB {ib} vs base {base}");
}

#[test]
fn electrical2_faster_than_electrical3() {
    let trace = small_trace("Cholesky");
    let completion = |cfg: ElectricalConfig| {
        let mut net = ElectricalNetwork::new(cfg);
        run_trace(&mut net, &trace, TraceOptions::default()).completion_cycle
    };
    assert!(
        completion(ElectricalConfig::electrical2()) < completion(ElectricalConfig::electrical3())
    );
}

#[test]
fn per_kind_latency_recorded() {
    let trace = small_trace("FFT");
    let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    run_trace(&mut net, &trace, TraceOptions::default());
    let by_kind = net.stats().latency_by_kind;
    let req = by_kind
        .get(phastlane_repro::netsim::PacketKind::ReadRequest)
        .or_else(|| by_kind.get(phastlane_repro::netsim::PacketKind::WriteRequest))
        .expect("requests recorded");
    let resp = by_kind
        .get(phastlane_repro::netsim::PacketKind::DataResponse)
        .expect("responses recorded");
    assert!(req.count() > 0 && resp.count() > 0);
    // A broadcast's per-copy mean includes far snoopers, so it exceeds
    // the unicast response mean on an uncongested run.
    assert!(req.mean().unwrap() > 0.0);
    assert!(resp.mean().unwrap() > 0.0);
}

/// Long randomized soak: hours of simulated traffic with conservation
/// checks. Run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "long soak; run with --ignored"]
fn soak_random_traffic() {
    use phastlane_repro::netsim::rng::SimRng;
    use phastlane_repro::netsim::DestSet;
    let mut rng = SimRng::seed_from_u64(0x50AC);
    for (label, mut net) in [
        (
            "optical",
            Box::new(PhastlaneNetwork::new(PhastlaneConfig::optical4())) as Box<dyn Network>,
        ),
        (
            "electrical",
            Box::new(ElectricalNetwork::new(ElectricalConfig::electrical3())),
        ),
    ] {
        let mut injected_copies = 0u64;
        for cycle in 0..50_000u64 {
            if cycle % 3 == 0 {
                let src = NodeId(rng.gen_range(0..64u16));
                let p = if rng.gen_bool(0.05) {
                    NewPacket::broadcast(src, PacketKind::ReadRequest)
                } else {
                    let dst = NodeId(rng.gen_range(0..64u16));
                    NewPacket {
                        src,
                        dests: DestSet::Unicast(dst),
                        kind: PacketKind::Data,
                    }
                };
                let copies = p.dests.expand(p.src, 64).len().max(1) as u64;
                if net.inject(p).is_some() {
                    injected_copies += copies;
                }
            }
            net.step();
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step();
            guard += 1;
            assert!(guard < 100_000, "{label}: soak did not drain");
        }
        assert_eq!(
            net.stats().delivered,
            injected_copies,
            "{label}: conservation"
        );
    }
}
