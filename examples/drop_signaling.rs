//! Demonstrates Phastlane's drop-signal return path and retransmission
//! (§2.1.2): shrink the electrical buffers to force drops under a
//! hotspot, watch the drop/backoff/retransmit machinery recover every
//! packet, and inspect the return-path model directly.
//!
//! Run with: `cargo run --release --example drop_signaling`

use phastlane_repro::netsim::geometry::Direction;
use phastlane_repro::netsim::{Mesh, Network, NewPacket, NodeId};
use phastlane_repro::optical::dropnet::{ReturnPath, ReturnPathRegistry};
use phastlane_repro::optical::{BufferDepth, PhastlaneConfig, PhastlaneNetwork};

fn main() {
    // Part 1: the return path itself. A packet that traversed
    // n0 -E> n1 -E> n2 -S> n10 and was dropped at n10 signals back over
    // the exact reverse path in the next cycle.
    let mesh = Mesh::PAPER;
    let trail = vec![
        (NodeId(0), Direction::East),
        (NodeId(1), Direction::East),
        (NodeId(2), Direction::South),
    ];
    let path = ReturnPath::from_forward_trail(mesh, &trail);
    println!("forward trail: n0 -E> n1 -E> n2 -S> n10 (dropped at n10)");
    println!("return path:   {path}");
    println!("signal reaches the launcher: {}\n", path.destination(mesh));

    let mut registry = ReturnPathRegistry::new();
    registry.register(&path).expect("first path registers");
    println!(
        "registering the same path again: {:?} (footnote 4: return paths\nnever overlap in a cycle)\n",
        registry.register(&path).map_err(|e| e.to_string())
    );

    // Part 2: force the machinery end to end. One-entry buffers plus an
    // all-to-one hotspot guarantee buffer-full drops.
    let cfg = PhastlaneConfig::with_hops_and_buffers(4, BufferDepth::Finite(1));
    let mut net = PhastlaneNetwork::new(cfg);
    let mut sent = 0;
    for src in mesh.iter_nodes() {
        if src != NodeId(0) && net.inject(NewPacket::unicast(src, NodeId(0))).is_some() {
            sent += 1;
        }
    }
    while net.in_flight() > 0 {
        net.step();
    }
    let stats = net.stats();
    println!("hotspot with 1-entry buffers: {sent} packets sent");
    println!("  dropped:       {}", stats.dropped);
    println!("  retransmitted: {}", stats.retransmitted);
    println!("  delivered:     {} (exactly once each)", stats.delivered);
    println!("  max latency:   {} cycles", stats.latency.max());
    assert_eq!(stats.delivered, sent);
    println!("\nevery drop was signalled within one cycle and recovered by");
    println!("the source's randomized backoff and resend.");
}
