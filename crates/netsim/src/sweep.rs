//! Injection-rate sweeps: the latency-vs-load curves of Figure 9 and
//! saturation-bandwidth extraction.

use crate::harness::{run_synthetic, SyntheticOptions, SyntheticResult, SyntheticWorkload};
use crate::network::Network;
use crate::stats::{EnergyReport, LatencyStats};

/// One point of a latency-vs-injection-rate curve.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load (packets per node per cycle).
    pub offered_rate: f64,
    /// Measured result at this load.
    pub result: SyntheticResult,
    /// True when the point was *not* simulated: the sweep had already
    /// seen two consecutive unstable points at lower rates, so this
    /// higher rate was synthesized as saturated (see [`latency_sweep`]).
    pub synthesized: bool,
}

impl SweepPoint {
    /// Mean packet latency, or `f64::INFINITY` if nothing was delivered.
    pub fn mean_latency(&self) -> f64 {
        self.result.latency.mean().unwrap_or(f64::INFINITY)
    }

    /// Whether the network kept up with the offered load: deliveries
    /// tracked offered packets and nothing was left stranded.
    /// Synthesized points are never stable.
    pub fn is_stable(&self) -> bool {
        !self.synthesized
            && self.result.unfinished == 0
            && self.result.delivered_rate >= 0.90 * self.result.offered_rate
    }

    /// A placeholder point for a rate the sweep skipped because lower
    /// rates had already saturated: nothing delivered, nothing measured.
    fn saturated_placeholder(rate: f64) -> SweepPoint {
        SweepPoint {
            offered_rate: rate,
            result: SyntheticResult {
                latency: LatencyStats::new(),
                offered_rate: rate,
                accepted_rate: 0.0,
                delivered_rate: 0.0,
                energy: EnergyReport::default(),
                unfinished: 0,
                undeliverable: 0,
                interrupt: None,
                perf: Default::default(),
            },
            synthesized: true,
        }
    }
}

/// Runs a fresh network at each requested injection rate.
///
/// `make_net` builds a new network per rate; `make_workload` builds the
/// per-rate traffic source (e.g. a Bernoulli process over a permutation
/// pattern).
///
/// # Early abort past saturation
///
/// Latency-vs-load curves are overwhelmingly dominated by the points
/// *past* saturation: each one runs its full warmup + measure + drain
/// budget only to report "unstable". Once two **consecutive** points
/// have come back unstable, any remaining rate at or above the last
/// unstable rate is not simulated at all — it is synthesized as a
/// saturated [`SweepPoint`] (`synthesized == true`, never
/// [`is_stable`](SweepPoint::is_stable), empty latency). Rates *below*
/// the last unstable rate (an unsorted sweep) are still simulated, so
/// out-of-order sweeps lose no information.
pub fn latency_sweep<N, W>(
    rates: &[f64],
    mut make_net: impl FnMut() -> N,
    mut make_workload: impl FnMut(f64) -> W,
    opts: SyntheticOptions,
) -> Vec<SweepPoint>
where
    N: Network,
    W: SyntheticWorkload,
{
    let mut points = Vec::with_capacity(rates.len());
    let mut consecutive_unstable = 0u32;
    let mut last_unstable_rate = f64::INFINITY;
    for &rate in rates {
        if consecutive_unstable >= 2 && rate >= last_unstable_rate {
            points.push(SweepPoint::saturated_placeholder(rate));
            continue;
        }
        let mut net = make_net();
        let mut workload = make_workload(rate);
        let result = run_synthetic(&mut net, &mut workload, opts);
        let point = SweepPoint {
            offered_rate: rate,
            result,
            synthesized: false,
        };
        if point.is_stable() {
            consecutive_unstable = 0;
        } else {
            consecutive_unstable += 1;
            last_unstable_rate = rate;
        }
        points.push(point);
    }
    points
}

/// Outcome of saturation extraction from a sweep: distinguishes "the
/// network saturated at the very first measured rate" from "nothing was
/// swept at all", which the bare `Option<f64>` of
/// [`saturation_rate`] cannot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Saturation {
    /// The highest offered rate whose point was still stable.
    Stable(f64),
    /// Points were swept, but none was stable: the network was already
    /// saturated at the lowest measured rate. The payload is that
    /// lowest rate (saturation throughput is somewhere below it).
    SaturatedFromStart(f64),
    /// The sweep contained no points.
    NotSwept,
}

impl Saturation {
    /// Classifies `(offered_rate, stable)` pairs, in any order.
    pub fn classify(points: impl IntoIterator<Item = (f64, bool)>) -> Saturation {
        let mut best_stable: Option<f64> = None;
        let mut lowest_rate: Option<f64> = None;
        for (rate, stable) in points {
            lowest_rate = Some(lowest_rate.map_or(rate, |l: f64| l.min(rate)));
            if stable {
                best_stable = Some(best_stable.map_or(rate, |b: f64| b.max(rate)));
            }
        }
        match (best_stable, lowest_rate) {
            (Some(r), _) => Saturation::Stable(r),
            (None, Some(low)) => Saturation::SaturatedFromStart(low),
            (None, None) => Saturation::NotSwept,
        }
    }

    /// The extracted saturation throughput, when one exists.
    pub fn rate(self) -> Option<f64> {
        match self {
            Saturation::Stable(r) => Some(r),
            Saturation::SaturatedFromStart(_) | Saturation::NotSwept => None,
        }
    }
}

/// Extracts the saturation outcome from a sweep: the highest offered
/// rate whose point is still [`stable`](SweepPoint::is_stable), or one
/// of the two explicit degenerate cases.
pub fn saturation(points: &[SweepPoint]) -> Saturation {
    Saturation::classify(points.iter().map(|p| (p.offered_rate, p.is_stable())))
}

/// The saturation throughput as a bare `Option`: `Some(rate)` for
/// [`Saturation::Stable`], `None` otherwise.
///
/// `None` conflates "saturated at the first measured rate" with "the
/// sweep was empty"; callers that care about the difference should use
/// [`saturation`] instead.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    saturation(points).rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SyntheticResult;
    use crate::packet::{Delivery, NewPacket, PacketId};
    use crate::stats::{EnergyReport, LatencyStats, NetworkStats};
    use crate::{Mesh, Network};

    fn point(rate: f64, delivered: f64, unfinished: u64) -> SweepPoint {
        SweepPoint {
            offered_rate: rate,
            result: SyntheticResult {
                latency: LatencyStats::new(),
                offered_rate: rate,
                accepted_rate: rate,
                delivered_rate: delivered,
                energy: EnergyReport::default(),
                unfinished,
                undeliverable: 0,
                perf: Default::default(),
                interrupt: None,
            },
            synthesized: false,
        }
    }

    #[test]
    fn saturation_is_last_stable_rate() {
        let pts = vec![
            point(0.1, 0.1, 0),
            point(0.2, 0.2, 0),
            point(0.3, 0.15, 500), // saturated
        ];
        assert_eq!(saturation_rate(&pts), Some(0.2));
        assert_eq!(saturation(&pts), Saturation::Stable(0.2));
    }

    #[test]
    fn saturated_from_start_vs_not_swept() {
        // The Option contract conflates these two...
        let unstable = vec![point(0.5, 0.1, 100), point(0.7, 0.1, 200)];
        assert_eq!(saturation_rate(&unstable), None);
        assert_eq!(saturation_rate(&[]), None);
        // ...the enum distinguishes them.
        assert_eq!(saturation(&unstable), Saturation::SaturatedFromStart(0.5));
        assert_eq!(saturation(&[]), Saturation::NotSwept);
        assert_eq!(saturation(&unstable).rate(), None);
        assert_eq!(saturation(&[]).rate(), None);
    }

    #[test]
    fn unstable_when_unfinished() {
        assert!(!point(0.1, 0.1, 1).is_stable());
        assert!(point(0.1, 0.095, 0).is_stable());
        assert!(!point(0.1, 0.05, 0).is_stable());
    }

    #[test]
    fn synthesized_points_are_never_stable() {
        let p = SweepPoint::saturated_placeholder(0.3);
        assert!(p.synthesized);
        assert!(!p.is_stable());
        assert!(p.mean_latency().is_infinite());
    }

    #[test]
    fn empty_latency_is_infinite() {
        assert!(point(0.1, 0.1, 0).mean_latency().is_infinite());
    }

    /// A network that accepts everything and never delivers: every
    /// sweep point is maximally unstable.
    struct BlackHole {
        cycle: u64,
        accepted: usize,
    }

    impl Network for BlackHole {
        fn name(&self) -> String {
            "BlackHole".into()
        }
        fn mesh(&self) -> Mesh {
            Mesh::new(2, 2)
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn inject(&mut self, _packet: NewPacket) -> Option<PacketId> {
            self.accepted += 1;
            Some(PacketId(self.accepted as u64))
        }
        fn step(&mut self) {
            self.cycle += 1;
        }
        fn drain_deliveries(&mut self) -> Vec<Delivery> {
            Vec::new()
        }
        fn in_flight(&self) -> usize {
            self.accepted
        }
        fn energy(&self) -> EnergyReport {
            EnergyReport::default()
        }
        fn stats(&self) -> NetworkStats {
            NetworkStats::default()
        }
    }

    #[test]
    fn sweep_aborts_after_two_consecutive_unstable_points() {
        use crate::geometry::NodeId;
        use crate::packet::{DestSet, PacketKind};
        let opts = SyntheticOptions {
            warmup: 2,
            measure: 8,
            drain: 8,
        };
        let mut nets_built = 0;
        let rates = [0.1, 0.2, 0.3, 0.4, 0.5];
        let points = latency_sweep(
            &rates,
            || {
                nets_built += 1;
                BlackHole {
                    cycle: 0,
                    accepted: 0,
                }
            },
            |_rate| {
                |_cycle: u64| {
                    vec![NewPacket {
                        src: NodeId(0),
                        dests: DestSet::Unicast(NodeId(1)),
                        kind: PacketKind::Data,
                    }]
                }
            },
            opts,
        );
        // Only the first two (unstable) points simulate; the remaining
        // three are synthesized as saturated.
        assert_eq!(nets_built, 2);
        assert_eq!(points.len(), rates.len());
        assert!(points.iter().take(2).all(|p| !p.synthesized));
        assert!(points.iter().skip(2).all(|p| p.synthesized));
        assert!(points.iter().all(|p| !p.is_stable()));
        assert_eq!(saturation(&points), Saturation::SaturatedFromStart(0.1));
    }

    #[test]
    fn sweep_still_simulates_lower_out_of_order_rates() {
        let opts = SyntheticOptions {
            warmup: 2,
            measure: 8,
            drain: 8,
        };
        let mut nets_built = 0;
        // Descending rates: the early-abort guard must not skip rates
        // below the last unstable one.
        let rates = [0.5, 0.4, 0.3];
        let _ = latency_sweep(
            &rates,
            || {
                nets_built += 1;
                BlackHole {
                    cycle: 0,
                    accepted: 0,
                }
            },
            |_rate| {
                |_cycle: u64| {
                    use crate::geometry::NodeId;
                    use crate::packet::{DestSet, PacketKind};
                    vec![NewPacket {
                        src: NodeId(0),
                        dests: DestSet::Unicast(NodeId(1)),
                        kind: PacketKind::Data,
                    }]
                }
            },
            opts,
        );
        assert_eq!(nets_built, 3, "descending rates are all simulated");
    }
}
