//! A plain-text trace format, so traces can be saved, inspected, and
//! replayed without a serialization dependency.
//!
//! ```text
//! # phastlane-trace v1
//! msg 0 src=3 kind=RR t=120 think=1 deps= dests=*
//! msg 1 src=9 kind=DR t=120 think=80 deps=0@9 dests=3
//! msg 2 src=3 kind=WB t=125 think=0 deps= dests=17,42
//! ```
//!
//! `dests` is `*` for broadcast, a single index for unicast, or a
//! comma-separated list for multicast.

use phastlane_netsim::geometry::NodeId;
use phastlane_netsim::harness::{Dep, MsgId, Trace, TraceMessage};
use phastlane_netsim::packet::{DestSet, PacketKind};
use std::fmt::Write as _;

/// Header line identifying the format.
pub const HEADER: &str = "# phastlane-trace v1";

/// An error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_code(kind: PacketKind) -> &'static str {
    match kind {
        PacketKind::ReadRequest => "RR",
        PacketKind::WriteRequest => "WR",
        PacketKind::DataResponse => "DR",
        PacketKind::Invalidate => "IN",
        PacketKind::Writeback => "WB",
        PacketKind::Data => "DA",
    }
}

fn kind_from_code(code: &str) -> Option<PacketKind> {
    Some(match code {
        "RR" => PacketKind::ReadRequest,
        "WR" => PacketKind::WriteRequest,
        "DR" => PacketKind::DataResponse,
        "IN" => PacketKind::Invalidate,
        "WB" => PacketKind::Writeback,
        "DA" => PacketKind::Data,
        _ => return None,
    })
}

/// Serializes a trace to the text format.
pub fn encode(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for m in &trace.messages {
        let deps: Vec<String> = m
            .deps
            .iter()
            .map(|d| match d.at {
                None => d.msg.0.to_string(),
                Some(node) => format!("{}@{}", d.msg.0, node.0),
            })
            .collect();
        let dests = match &m.dests {
            DestSet::Broadcast => "*".to_string(),
            DestSet::Unicast(d) => d.0.to_string(),
            DestSet::Multicast(list) => list
                .iter()
                .map(|d| d.0.to_string())
                .collect::<Vec<_>>()
                .join(","),
        };
        writeln!(
            out,
            "msg {} src={} kind={} t={} think={} deps={} dests={}",
            m.id.0,
            m.src.0,
            kind_code(m.kind),
            m.earliest,
            m.think,
            deps.join(","),
            dests
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses the text format back into a trace.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line on malformed
/// input.
pub fn decode(text: &str) -> Result<Trace, ParseTraceError> {
    let err = |line: usize, message: String| ParseTraceError { line, message };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(err(
                1,
                format!(
                    "expected header {HEADER:?}, found {:?}",
                    other.map(|(_, l)| l)
                ),
            ))
        }
    }

    let mut messages = Vec::new();
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("msg") {
            return Err(err(lineno, format!("expected 'msg', got {line:?}")));
        }
        let id: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(lineno, "missing or invalid message id".into()))?;

        let mut src = None;
        let mut kind = None;
        let mut earliest = None;
        let mut think = None;
        let mut deps = Vec::new();
        let mut dests = None;
        for field in parts {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("malformed field {field:?}")))?;
            match key {
                "src" => {
                    src =
                        Some(NodeId(value.parse().map_err(|_| {
                            err(lineno, format!("invalid src {value:?}"))
                        })?))
                }
                "kind" => {
                    kind = Some(
                        kind_from_code(value)
                            .ok_or_else(|| err(lineno, format!("unknown kind {value:?}")))?,
                    )
                }
                "t" => {
                    earliest = Some(
                        value
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid time {value:?}")))?,
                    )
                }
                "think" => {
                    think = Some(
                        value
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid think {value:?}")))?,
                    )
                }
                "deps" => {
                    for d in value.split(',').filter(|s| !s.is_empty()) {
                        let dep = match d.split_once('@') {
                            None => Dep::full(MsgId(
                                d.parse()
                                    .map_err(|_| err(lineno, format!("invalid dep {d:?}")))?,
                            )),
                            Some((msg, node)) => Dep::at(
                                MsgId(
                                    msg.parse()
                                        .map_err(|_| err(lineno, format!("invalid dep {d:?}")))?,
                                ),
                                NodeId(
                                    node.parse().map_err(|_| {
                                        err(lineno, format!("invalid dep node {d:?}"))
                                    })?,
                                ),
                            ),
                        };
                        deps.push(dep);
                    }
                }
                "dests" => {
                    dests = Some(if value == "*" {
                        DestSet::Broadcast
                    } else {
                        let ids: Result<Vec<NodeId>, _> = value
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(|s| s.parse::<u16>().map(NodeId))
                            .collect();
                        let ids =
                            ids.map_err(|_| err(lineno, format!("invalid dests {value:?}")))?;
                        match ids.len() {
                            0 => return Err(err(lineno, "empty dests".into())),
                            1 => DestSet::Unicast(ids[0]),
                            _ => DestSet::Multicast(ids),
                        }
                    })
                }
                other => return Err(err(lineno, format!("unknown field {other:?}"))),
            }
        }
        messages.push(TraceMessage {
            id: MsgId(id),
            src: src.ok_or_else(|| err(lineno, "missing src".into()))?,
            dests: dests.ok_or_else(|| err(lineno, "missing dests".into()))?,
            kind: kind.ok_or_else(|| err(lineno, "missing kind".into()))?,
            earliest: earliest.ok_or_else(|| err(lineno, "missing t".into()))?,
            deps,
            think: think.ok_or_else(|| err(lineno, "missing think".into()))?,
        });
    }
    let trace = Trace { messages };
    trace
        .validate()
        .map_err(|e| err(0, format!("semantic error: {e}")))?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::{generate_trace, BenchmarkProfile};
    use phastlane_netsim::geometry::Mesh;

    fn sample_trace() -> Trace {
        let profile = BenchmarkProfile {
            name: "codec-test",
            misses_per_core: 3,
            write_fraction: 0.5,
            shared_fraction: 0.5,
            writeback_fraction: 0.5,
            mean_gap: 10.0,
            barrier_every: 4,
            hotspot_weight: 0.2,
            outstanding: 2,
            active_cores: 64,
            seed: 99,
        };
        generate_trace(Mesh::PAPER, &profile)
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample_trace();
        let text = encode(&t);
        let back = decode(&text).expect("roundtrip decodes");
        assert_eq!(t, back);
    }

    #[test]
    fn header_enforced() {
        let e = decode("bogus\n").unwrap_err();
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            format!("{HEADER}\n\n# comment\nmsg 0 src=1 kind=DA t=5 think=0 deps= dests=2\n");
        let t = decode(&text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.messages[0].earliest, 5);
    }

    #[test]
    fn malformed_field_reports_line() {
        let text = format!("{HEADER}\nmsg 0 src=1 kind=XX t=5 think=0 deps= dests=2\n");
        let e = decode(&text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("kind"));
    }

    #[test]
    fn forward_dep_rejected_semantically() {
        let text = format!("{HEADER}\nmsg 0 src=1 kind=DA t=5 think=0 deps=1 dests=2\n");
        let e = decode(&text).unwrap_err();
        assert!(e.message.contains("semantic"));
    }

    #[test]
    fn multicast_dests_roundtrip() {
        let text = format!("{HEADER}\nmsg 0 src=1 kind=IN t=0 think=0 deps= dests=2,3,4\n");
        let t = decode(&text).unwrap();
        assert_eq!(
            t.messages[0].dests,
            DestSet::Multicast(vec![NodeId(2), NodeId(3), NodeId(4)])
        );
    }
}
