//! Diagnostic: replay details for one benchmark.
use phastlane_bench::{run_on, scaled_profile, Config};
use phastlane_netsim::geometry::Mesh;
use phastlane_traffic::coherence::generate_trace;
use phastlane_traffic::splash2;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Water-NSquared".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let profile = scaled_profile(&splash2::benchmark(&name).unwrap(), scale);
    let trace = generate_trace(Mesh::PAPER, &profile);
    println!("{} scale {scale}: {} messages", profile.name, trace.len());
    for cfg in [Config::Optical4, Config::Electrical3] {
        let out = run_on(cfg, &trace);
        println!(
            "{:12} completion={} lat[{}] drops={} retx={}",
            cfg.label(),
            out.result.completion_cycle,
            out.result.latency,
            out.stats.dropped,
            out.stats.retransmitted,
        );
    }
}
