//! Randomized property tests of the Phastlane building blocks: flight
//! plans, control-bit encoding, multicast splitting, and drop return
//! paths. Cases come from the in-tree deterministic [`SimRng`].

use phastlane_core::control::{DecodedAction, RouteControl};
use phastlane_core::dropnet::{ReturnPath, ReturnPathRegistry};
use phastlane_core::multicast::split_multicast;
use phastlane_core::plan::{Plan, StepExit, StopKind};
use phastlane_netsim::geometry::{Mesh, NodeId};
use phastlane_netsim::rng::SimRng;

fn mesh() -> Mesh {
    Mesh::PAPER
}

/// Two distinct nodes of the 8x8 paper mesh.
fn random_pair(rng: &mut SimRng) -> (NodeId, NodeId) {
    let a = rng.gen_range(0u16..64);
    loop {
        let b = rng.gen_range(0u16..64);
        if b != a {
            return (NodeId(a), NodeId(b));
        }
    }
}

/// A source plus a deduplicated non-empty multicast target set
/// excluding the source.
fn random_targets(rng: &mut SimRng) -> (NodeId, Vec<NodeId>) {
    let src = NodeId(rng.gen_range(0u16..64));
    loop {
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(1usize..20) {
            set.insert(rng.gen_range(0u16..64));
        }
        let targets: Vec<NodeId> = set
            .into_iter()
            .filter(|&d| d != src.0)
            .map(NodeId)
            .collect();
        if !targets.is_empty() {
            return (src, targets);
        }
    }
}

/// Unicast plans: segment length respects the hop limit; the plan
/// either accepts at the destination or stops at an interim node
/// exactly `max_hops` in.
#[test]
fn unicast_plan_respects_hop_limit() {
    let mut rng = SimRng::seed_from_u64(0x00C0_4E01);
    for _ in 0..256 {
        let (src, dst) = random_pair(&mut rng);
        let max_hops = rng.gen_range(1u32..9);
        let plan = Plan::build(mesh(), src, &[dst], false, max_hops);
        assert!(plan.hops() <= max_hops);
        let dist = mesh().distance(src, dst);
        if dist <= max_hops {
            assert!(!plan.ends_at_interim());
            assert_eq!(plan.deliveries(), vec![dst]);
        } else {
            assert!(plan.ends_at_interim());
            assert_eq!(plan.hops(), max_hops);
            assert!(plan.deliveries().is_empty());
        }
    }
}

/// Control encoding roundtrips: decoding group 1 at each router and
/// frequency-translating reproduces the plan exactly.
#[test]
fn control_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x00C0_4E02);
    for _ in 0..256 {
        let (src, dst) = random_pair(&mut rng);
        let max_hops = rng.gen_range(1u32..15);
        let plan = Plan::build(mesh(), src, &[dst], false, max_hops);
        let mut ctl = RouteControl::encode(&plan);
        for step in &plan.steps()[1..] {
            let entry = step.entry.expect("hop steps have entries");
            let action = ctl.decode(entry).expect("well-formed control");
            match step.exit {
                StepExit::Forward(out) => {
                    assert_eq!(action, DecodedAction::Forward { out, tap: step.tap })
                }
                StepExit::Stop(StopKind::Accept) => {
                    assert_eq!(action, DecodedAction::Accept)
                }
                StepExit::Stop(StopKind::Interim) => {
                    assert_eq!(action, DecodedAction::InterimStop { tap: step.tap })
                }
            }
            ctl = ctl.translate();
        }
    }
}

/// Multicast splitting covers each target exactly once, every message
/// builds a valid plan, and the message count never exceeds the
/// paper's 16.
#[test]
fn multicast_split_partitions() {
    let mut rng = SimRng::seed_from_u64(0x00C0_4E03);
    for _ in 0..128 {
        let (src, targets) = random_targets(&mut rng);
        let messages = split_multicast(mesh(), src, &targets);
        assert!(messages.len() <= 16);
        let mut covered: Vec<NodeId> = messages.iter().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = targets.clone();
        expected.sort_unstable();
        assert_eq!(covered, expected);
        for msg in &messages {
            // Every message must be plannable (ordering contract).
            let plan = Plan::build(mesh(), src, msg, true, 14);
            assert!(plan.hops() >= 1);
        }
    }
}

/// A full-length multicast plan delivers exactly the message's targets.
#[test]
fn multicast_plan_delivers_targets() {
    let mut rng = SimRng::seed_from_u64(0x00C0_4E04);
    for _ in 0..128 {
        let (src, targets) = random_targets(&mut rng);
        for msg in split_multicast(mesh(), src, &targets) {
            let plan = Plan::build(mesh(), src, &msg, true, 14);
            if !plan.ends_at_interim() {
                let mut delivered = plan.deliveries();
                delivered.sort_unstable();
                let mut expect: Vec<NodeId> = msg.iter().copied().collect();
                expect.sort_unstable();
                assert_eq!(delivered, expect);
            }
        }
    }
}

/// Return paths terminate at the launching node and have the same
/// length as the forward trail; paths from disjoint forward paths never
/// collide in the registry.
#[test]
fn return_path_reverses_forward() {
    let mut rng = SimRng::seed_from_u64(0x00C0_4E05);
    for _ in 0..256 {
        let (src, dst) = random_pair(&mut rng);
        let plan = Plan::build(mesh(), src, &[dst], false, 8);
        let trail: Vec<_> = plan
            .steps()
            .iter()
            .filter_map(|s| match s.exit {
                StepExit::Forward(d) => Some((s.router, d)),
                StepExit::Stop(_) => None,
            })
            .collect();
        if trail.is_empty() {
            continue;
        }
        let rp = ReturnPath::from_forward_trail(mesh(), &trail);
        assert_eq!(rp.len(), trail.len());
        assert_eq!(rp.destination(mesh()), src);
        let mut reg = ReturnPathRegistry::new();
        assert!(reg.register(&rp).is_ok());
        // Registering the same path again must collide.
        assert!(reg.register(&rp).is_err());
    }
}
