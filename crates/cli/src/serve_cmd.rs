//! The `phastlane serve` and `phastlane client` subcommands: run the
//! simulator as a long-running job service, and talk to one.
//!
//! * `serve` — bind the HTTP/NDJSON API, recover persisted jobs from
//!   `--state-dir`, and run until SIGTERM/SIGINT (or `POST /shutdown`
//!   when `--allow-shutdown` is given). Shutdown is graceful: no new
//!   jobs are accepted, queued jobs are cancelled, in-flight runs stop
//!   cooperatively at the next watchdog gate, and the process exits 0.
//! * `client submit|status|watch|shutdown` — the matching client. A
//!   `submit --wait --report-out FILE` writes the canonical report
//!   byte-for-byte as served, so `cmp` against a local `lab run`
//!   export is the determinism check.

use crate::args::{ArgError, Parsed};
use phastlane_netsim::obs::json::{self, JsonValue};
use phastlane_serve::{client, server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Default bind address for `serve` and target for `client`.
const DEFAULT_ADDR: &str = "127.0.0.1:7690";

/// How often the serve main loop re-checks the shutdown flags, and how
/// often `client submit --wait` polls job status.
const POLL: Duration = Duration::from_millis(200);

/// Set by the SIGINT/SIGTERM handler; polled by the serve main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::Release);
}

/// Installs the async-signal-safe handlers. The handler only flips an
/// atomic; all real shutdown work happens on the main thread. (glibc's
/// `signal()` installs with `SA_RESTART`, which is why the server's
/// accept loop polls a nonblocking listener instead of counting on an
/// interrupted `accept`.)
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// `phastlane serve`: run the job service until asked to stop.
///
/// # Errors
///
/// Propagates bind/state-dir failures and malformed options.
pub fn cmd_serve(p: &Parsed) -> Result<String, ArgError> {
    let config = ServerConfig {
        addr: p.get("addr").unwrap_or(DEFAULT_ADDR).to_string(),
        workers: p.get_parsed("workers", 2)?,
        queue_depth: p.get_parsed("queue-depth", 16)?,
        baseline_dir: PathBuf::from(p.get("baseline-dir").unwrap_or("results/baselines")),
        state_dir: p.get("state-dir").map(PathBuf::from),
        allow_shutdown: p.flag("allow-shutdown"),
    };
    install_signal_handlers();
    let handle = server::start(config).map_err(ArgError)?;
    // Announce readiness on stderr immediately (the Ok return only
    // prints at exit); scripts wait for this line.
    eprintln!("phastlane-serve listening on {}", handle.local_addr());
    while !SIGNALLED.load(Ordering::Acquire) && !handle.shutdown_requested() {
        std::thread::sleep(POLL);
    }
    eprintln!("phastlane-serve: shutting down");
    let summary = handle.join();
    let [total, _, _, done, failed, cancelled] = summary.jobs;
    Ok(format!(
        "serve: {total} job(s) seen ({done} done, {failed} failed, \
         {cancelled} cancelled), {} submission(s) rejected\n",
        summary.rejected
    ))
}

fn addr_of(p: &Parsed) -> String {
    p.get("addr").unwrap_or(DEFAULT_ADDR).to_string()
}

/// Formats an HTTP error response into a CLI error carrying the status
/// code (scripts grep for "HTTP 400" / "HTTP 429").
fn http_error(context: &str, status: u16, body: &[u8]) -> ArgError {
    let detail = std::str::from_utf8(body)
        .ok()
        .and_then(|t| json::parse(t).ok())
        .and_then(|v| v.get("error").and_then(JsonValue::as_str).map(String::from))
        .unwrap_or_else(|| String::from_utf8_lossy(body).trim().to_string());
    ArgError(format!("{context} (HTTP {status}): {detail}"))
}

/// Blocks until the job reaches a terminal status; returns that status.
fn wait_for_terminal(addr: &str, id: u64) -> Result<String, ArgError> {
    loop {
        let (status, body) =
            client::request(addr, "GET", &format!("/jobs/{id}"), None).map_err(ArgError)?;
        if status != 200 {
            return Err(http_error("status poll failed", status, &body));
        }
        let v = json::parse(std::str::from_utf8(&body).unwrap_or(""))
            .map_err(|e| ArgError(format!("bad status JSON: {e}")))?;
        let state = v
            .get("status")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string();
        match state.as_str() {
            "done" | "failed" | "cancelled" => return Ok(state),
            _ => std::thread::sleep(POLL),
        }
    }
}

fn cmd_client_submit(p: &Parsed) -> Result<String, ArgError> {
    let addr = addr_of(p);
    let path = p
        .positional(2)
        .ok_or_else(|| ArgError("client submit <spec-file> [--addr A] [--wait]".into()))?;
    let spec_text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let workers: u64 = p.get_parsed("workers", 1)?;
    let envelope = JsonValue::Obj(vec![
        ("spec".into(), JsonValue::Str(spec_text)),
        ("workers".into(), JsonValue::Uint(workers)),
    ]);
    let (status, body) = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(envelope.to_string_compact().as_bytes()),
    )
    .map_err(ArgError)?;
    if status != 202 {
        return Err(http_error("submission rejected", status, &body));
    }
    let v = json::parse(std::str::from_utf8(&body).unwrap_or(""))
        .map_err(|e| ArgError(format!("bad submit response: {e}")))?;
    let id = v
        .get("id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ArgError("submit response carries no job id".into()))?;
    let mut out = format!("job {id} queued on {addr}\n");

    if p.flag("wait") || p.get("report-out").is_some() {
        let state = wait_for_terminal(&addr, id)?;
        out.push_str(&format!("job {id}: {state}\n"));
        if state != "done" {
            return Err(ArgError(format!("{out}job {id} ended {state}, no report")));
        }
        if let Some(dest) = p.get("report-out") {
            let (status, report) =
                client::request(&addr, "GET", &format!("/jobs/{id}/report"), None)
                    .map_err(ArgError)?;
            if status != 200 {
                return Err(http_error("report fetch failed", status, &report));
            }
            // Verbatim bytes: this file must `cmp` equal to a local
            // `lab run --report-out` export of the same spec.
            std::fs::write(dest, &report)
                .map_err(|e| ArgError(format!("cannot write {dest}: {e}")))?;
            out.push_str(&format!("report -> {dest} ({} bytes)\n", report.len()));
        }
    }
    Ok(out)
}

fn cmd_client_status(p: &Parsed) -> Result<String, ArgError> {
    let addr = addr_of(p);
    let id = p
        .positional(2)
        .ok_or_else(|| ArgError("client status <job-id> [--addr A]".into()))?;
    let (status, body) =
        client::request(&addr, "GET", &format!("/jobs/{id}"), None).map_err(ArgError)?;
    if status != 200 {
        return Err(http_error("status fetch failed", status, &body));
    }
    Ok(String::from_utf8_lossy(&body).into_owned())
}

fn cmd_client_watch(p: &Parsed) -> Result<String, ArgError> {
    let addr = addr_of(p);
    let id = p
        .positional(2)
        .ok_or_else(|| ArgError("client watch <job-id> [--addr A]".into()))?;
    let mut lines = 0u64;
    let status = client::stream(&addr, &format!("/jobs/{id}/events"), |line| {
        // Live NDJSON passthrough: each event is printed as it arrives.
        println!("{line}");
        lines += 1;
    })
    .map_err(ArgError)?;
    if status != 200 {
        return Err(ArgError(format!(
            "event stream refused (HTTP {status}); does job {id} exist?"
        )));
    }
    Ok(format!("watched job {id}: {lines} event line(s)\n"))
}

fn cmd_client_shutdown(p: &Parsed) -> Result<String, ArgError> {
    let addr = addr_of(p);
    let (status, body) = client::request(&addr, "POST", "/shutdown", None).map_err(ArgError)?;
    if status != 200 {
        return Err(http_error("shutdown refused", status, &body));
    }
    Ok(format!("server at {addr} is shutting down\n"))
}

/// `phastlane client submit|status|watch|shutdown`.
///
/// # Errors
///
/// Propagates connection and HTTP-level failures (with the status code
/// in the message).
pub fn cmd_client(p: &Parsed) -> Result<String, ArgError> {
    match p.positional(1) {
        Some("submit") => cmd_client_submit(p),
        Some("status") => cmd_client_status(p),
        Some("watch") => cmd_client_watch(p),
        Some("shutdown") => cmd_client_shutdown(p),
        other => Err(ArgError(format!(
            "client subcommand must be submit|status|watch|shutdown, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> Parsed {
        Parsed::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn client_requires_a_subcommand() {
        assert!(cmd_client(&parsed(&["client"])).is_err());
        assert!(cmd_client(&parsed(&["client", "frobnicate"])).is_err());
        assert!(cmd_client(&parsed(&["client", "submit"])).is_err());
        assert!(cmd_client(&parsed(&["client", "status"])).is_err());
    }

    #[test]
    fn serve_then_client_roundtrip_in_process() {
        // Drive the real server through the client subcommands over a
        // loopback socket picked by the OS.
        let handle = server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            allow_shutdown: true,
            ..ServerConfig::default()
        })
        .expect("server starts");
        let addr = handle.local_addr().to_string();

        let dir = std::env::temp_dir().join(format!("phastlane-serve-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("t.lab");
        std::fs::write(
            &spec,
            "name serve-cli\nmesh 4x4\nseed 5\nnets optical4\npatterns uniform\n\
             rates 0.02\nwarmup 50\nmeasure 100\ndrain 500\n",
        )
        .unwrap();
        let report = dir.join("report.json");

        let out = cmd_client(&parsed(&[
            "client",
            "submit",
            spec.to_str().unwrap(),
            &format!("--addr={addr}"),
            "--wait",
            "--report-out",
            report.to_str().unwrap(),
        ]))
        .expect("submit + wait + fetch");
        assert!(out.contains("done"), "{out}");
        assert!(report.exists());

        let out = cmd_client(&parsed(&[
            "client",
            "status",
            "1",
            &format!("--addr={addr}"),
        ]))
        .expect("status");
        assert!(out.contains("\"done\""), "{out}");

        let out = cmd_client(&parsed(&[
            "client",
            "watch",
            "1",
            &format!("--addr={addr}"),
        ]))
        .expect("watch replays a finished job's history");
        assert!(out.contains("event line(s)"), "{out}");

        let out = cmd_client(&parsed(&["client", "shutdown", &format!("--addr={addr}")]))
            .expect("shutdown");
        assert!(out.contains("shutting down"), "{out}");
        assert!(handle.shutdown_requested());
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
