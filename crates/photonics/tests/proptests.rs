//! Property-based tests of the §3 analytic models.

use phastlane_photonics::area::RouterArea;
use phastlane_photonics::delay::{RouterDesign, RouterOp, CLOCK_PERIOD};
use phastlane_photonics::power::PowerPoint;
use phastlane_photonics::scaling::{chain_delays, Scaling};
use phastlane_photonics::units::TechNode;
use phastlane_photonics::wdm::WdmConfig;
use proptest::prelude::*;

fn arb_wdm() -> impl Strategy<Value = WdmConfig> {
    // Powers of two from 8 to 256 wavelengths.
    (3u32..9).prop_map(|p| WdmConfig::new(1 << p))
}

proptest! {
    /// Peak optical power is monotone: more hops or worse crossings never
    /// reduce it.
    #[test]
    fn power_monotone(wdm in arb_wdm(), hops in 1u32..10, eff_pct in 950u32..999) {
        let eff = eff_pct as f64 / 1000.0;
        let p = PowerPoint::new(wdm, hops, eff).peak_optical_power().value();
        let p_more_hops = PowerPoint::new(wdm, hops + 1, eff).peak_optical_power().value();
        let p_worse_eff =
            PowerPoint::new(wdm, hops, eff - 0.005).peak_optical_power().value();
        prop_assert!(p_more_hops > p);
        prop_assert!(p_worse_eff > p);
        prop_assert!(p.is_finite() && p > 0.0);
    }

    /// The transmission delay grows strictly with hop count and the
    /// max-hops solver is exactly the crossover point.
    #[test]
    fn max_hops_is_the_crossover(wdm in arb_wdm(), scaling in prop_oneof![
        Just(Scaling::Optimistic), Just(Scaling::Average), Just(Scaling::Pessimistic)
    ]) {
        let d = RouterDesign { wdm, scaling, node: TechNode::NM16 };
        let h = d.max_hops_per_cycle();
        prop_assert!(h >= 1, "at least one hop must fit at 4 GHz");
        prop_assert!(d.transmission_delay(h) <= CLOCK_PERIOD);
        prop_assert!(d.transmission_delay(h + 1) > CLOCK_PERIOD);
        for hops in 1..h {
            prop_assert!(d.transmission_delay(hops) < d.transmission_delay(hops + 1));
        }
    }

    /// Critical paths order PP > PB > PA for every WDM degree and
    /// scenario (the Figure 5 observation is not specific to the sweep).
    #[test]
    fn critical_path_order_everywhere(wdm in arb_wdm(), scaling in prop_oneof![
        Just(Scaling::Optimistic), Just(Scaling::Average), Just(Scaling::Pessimistic)
    ]) {
        let d = RouterDesign { wdm, scaling, node: TechNode::NM16 };
        let pp = d.critical_path(RouterOp::PacketPass).total();
        let pb = d.critical_path(RouterOp::PacketBlock).total();
        let pa = d.critical_path(RouterOp::PacketAccept).total();
        prop_assert!(pp.value() > 0.0);
        prop_assert!(pb > pa);
        // PP > PB needs the traverse to outweigh a receive, which holds
        // for the calibrated sweep; for arbitrary WDM we only require
        // PP to be the largest or within rounding of PB.
        prop_assert!(pp.value() >= pb.value() * 0.95);
    }

    /// Scaling fits are positive everywhere in range, and in the
    /// extrapolation region (below the measured 22 nm anchor) the
    /// pessimistic fit is strictly the slowest — that is what makes it
    /// pessimistic.
    #[test]
    fn scaling_scenarios_ordered(nm in 16u32..46) {
        let node = TechNode(nm);
        let o = chain_delays(Scaling::Optimistic, node);
        let a = chain_delays(Scaling::Average, node);
        let p = chain_delays(Scaling::Pessimistic, node);
        for d in [o, a, p] {
            prop_assert!(d.transmit.value() > 0.0);
            prop_assert!(d.receive.value() > 0.0);
        }
        if nm < 22 {
            prop_assert!(o.transmit < a.transmit);
            prop_assert!(a.transmit < p.transmit);
            prop_assert!(o.receive < p.receive);
        }
    }

    /// Router area components are positive and total is their sum.
    #[test]
    fn area_components_sum(wdm in arb_wdm()) {
        let a = RouterArea::for_wdm(wdm);
        prop_assert!(a.turn_region.value() > 0.0);
        prop_assert!(a.ports.value() > 0.0);
        prop_assert!(a.fixed.value() > 0.0);
        let sum = a.turn_region.value() + a.ports.value() + a.fixed.value();
        prop_assert!((sum - a.total().value()).abs() < 1e-12);
    }

    /// WDM packaging conserves bits: waveguides * degree covers the
    /// payload with less than one waveguide of slack.
    #[test]
    fn wdm_packaging_conserves_bits(wdm in arb_wdm()) {
        let capacity = wdm.payload_waveguides() * wdm.payload_wdm;
        prop_assert!(capacity >= 640);
        prop_assert!(capacity - 640 < wdm.payload_wdm);
    }
}
