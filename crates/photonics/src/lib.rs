//! Nanophotonic device, delay, optical power, and area models for the
//! Phastlane reproduction.
//!
//! This crate implements §3 of *Cianchetti, Kerekes, Albonesi, "Phastlane:
//! A Rapid Transit Optical Routing Network" (ISCA 2009)* — the router
//! design-space exploration that fixes the network configuration the
//! simulator crates then use:
//!
//! * [`scaling`] — optimistic/average/pessimistic technology-scaling fits
//!   for the optical transmit and receive chains (Figure 4);
//! * [`devices`] — waveguide, ring-resonator, modulator, and receiver
//!   models;
//! * [`wdm`] — packaging of the 80-byte single-flit packet onto payload
//!   and control waveguides (Table 1, Figure 3);
//! * [`delay`] — critical-path analysis of the router's internal
//!   operations and the max-hops-per-cycle solver (Figures 5 and 6);
//! * [`power`] — the peak optical power loss-budget model (Figure 7);
//! * [`area`] — the router area model and the 64-wavelength sweet spot
//!   (Figure 8).
//!
//! # Example
//!
//! Recomputing the paper's headline design-space result — 8, 5, and 4 hops
//! per 4 GHz cycle under optimistic, average, and pessimistic scaling:
//!
//! ```
//! use phastlane_photonics::delay::RouterDesign;
//! use phastlane_photonics::scaling::Scaling;
//!
//! let hops: Vec<u32> = Scaling::ALL
//!     .iter()
//!     .map(|&s| RouterDesign::paper(s).max_hops_per_cycle())
//!     .collect();
//! assert_eq!(hops, vec![8, 5, 4]);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod delay;
pub mod devices;
pub mod power;
pub mod scaling;
pub mod units;
pub mod wdm;

pub use delay::RouterDesign;
pub use scaling::Scaling;
pub use wdm::WdmConfig;
