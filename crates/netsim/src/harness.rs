//! Workload harnesses: open-loop synthetic traffic and closed-loop trace
//! replay with inter-message dependencies.
//!
//! The paper evaluates both ways (§4): synthetic injection-rate sweeps for
//! latency/saturation curves (Figure 9), and SPLASH2 traces for network
//! speedup and power (Figures 10 and 11). Trace replay here is
//! *dependency-aware*: a response message only becomes eligible once the
//! request it answers was delivered, so a faster network finishes the
//! trace sooner — which is what "network speedup" measures.

use crate::fastmap::FastMap;
use crate::geometry::NodeId;
use crate::network::Network;
use crate::obs::{CycleTotals, MetricsCollector, PerfProfile};
use crate::packet::{DestSet, NewPacket, PacketId, PacketKind};
use crate::stats::{EnergyReport, LatencyStats};
use crate::watchdog::{Interrupt, Watchdog};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Open-loop synthetic traffic
// ---------------------------------------------------------------------------

/// A source of synthetic traffic: called once per cycle, returns the
/// packets generated that cycle (possibly none).
pub trait SyntheticWorkload {
    /// Packets generated in `cycle`.
    fn generate(&mut self, cycle: u64) -> Vec<NewPacket>;

    /// Appends this cycle's packets to `out` instead of returning a
    /// fresh allocation. The harness calls this once per cycle with a
    /// reused buffer; workloads with a hand-rolled generator should
    /// override it (the default falls back to [`generate`](Self::generate)).
    fn generate_into(&mut self, cycle: u64, out: &mut Vec<NewPacket>) {
        out.append(&mut self.generate(cycle));
    }
}

impl<F: FnMut(u64) -> Vec<NewPacket>> SyntheticWorkload for F {
    fn generate(&mut self, cycle: u64) -> Vec<NewPacket> {
        self(cycle)
    }
}

/// Result of an open-loop run.
#[derive(Debug, Clone)]
pub struct SyntheticResult {
    /// Latency (generation to delivery, per destination) of packets
    /// generated during the measurement window.
    pub latency: LatencyStats,
    /// Packets generated per node per cycle during measurement.
    pub offered_rate: f64,
    /// Packets accepted into NICs per node per cycle during measurement.
    pub accepted_rate: f64,
    /// Deliveries per node per cycle during measurement.
    pub delivered_rate: f64,
    /// Energy spent during the measurement window.
    pub energy: EnergyReport,
    /// Number of measured packets still undelivered when the run ended
    /// (non-zero means the network was saturated).
    pub unfinished: u64,
    /// Per-destination deliveries the network terminally gave up on
    /// (retry cap under a fault plan). These count as *resolved* — they
    /// no longer block drain — but not as delivered.
    pub undeliverable: u64,
    /// Set when a [`Watchdog`] stopped the run early; the counters above
    /// then describe the partial run up to the interrupt.
    pub interrupt: Option<Interrupt>,
    /// Simulator throughput over the whole run (warmup + measure + drain).
    pub perf: PerfProfile,
}

/// Options for [`run_synthetic`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticOptions {
    /// Cycles to run before measuring (network warm-up).
    pub warmup: u64,
    /// Cycles of the measurement window.
    pub measure: u64,
    /// Extra cycles allowed to drain measured packets after generation
    /// stops.
    pub drain: u64,
}

impl Default for SyntheticOptions {
    fn default() -> Self {
        SyntheticOptions {
            warmup: 1_000,
            measure: 4_000,
            drain: 8_000,
        }
    }
}

/// Runs a synthetic workload against a network.
///
/// Generated packets that do not fit in their NIC are held in an unbounded
/// per-source queue (the "source queue"); latency is measured from
/// *generation*, so source queueing delay is included — this is what makes
/// latency diverge at saturation.
pub fn run_synthetic<N: Network + ?Sized, W: SyntheticWorkload>(
    net: &mut N,
    workload: &mut W,
    opts: SyntheticOptions,
) -> SyntheticResult {
    run_synthetic_observed(net, workload, opts, None)
}

/// [`run_synthetic`] with an optional time-series metrics collector.
///
/// When `metrics` is given, the harness feeds it per-cycle offered,
/// accepted, and NIC-rejection counts plus every delivery's latency, and
/// closes sample windows on the collector's interval (cycle numbers are
/// relative to the start of the run). The collector's network-counter
/// snapshots (`dropped`, `retransmitted`, occupancy) are only queried on
/// window boundaries, so sampling adds no per-cycle cost beyond a few
/// counter increments.
pub fn run_synthetic_observed<N: Network + ?Sized, W: SyntheticWorkload>(
    net: &mut N,
    workload: &mut W,
    opts: SyntheticOptions,
    mut metrics: Option<&mut MetricsCollector>,
) -> SyntheticResult {
    let wall_start = Instant::now();
    let mut drive = SyntheticDrive::new(net, opts);
    while !drive.done() {
        drive.tick(net, workload, metrics.as_deref_mut());
    }
    drive.finish(net, metrics, wall_start.elapsed())
}

/// [`run_synthetic`] with an optional [`Watchdog`]: the drive stops at
/// the first interrupt and records the verdict in
/// [`SyntheticResult::interrupt`].
pub fn run_synthetic_watched<N: Network + ?Sized, W: SyntheticWorkload>(
    net: &mut N,
    workload: &mut W,
    opts: SyntheticOptions,
    watchdog: Option<Watchdog>,
) -> SyntheticResult {
    let wall_start = Instant::now();
    let mut drive = SyntheticDrive::new(net, opts);
    if let Some(wd) = watchdog {
        drive.set_watchdog(wd);
    }
    while !drive.done() {
        drive.tick(net, workload, None);
    }
    drive.finish(net, None, wall_start.elapsed())
}

/// Runs several independent `(network, workload)` replicas in lockstep:
/// one loop advances every unfinished replica by one cycle per round, so
/// the instruction stream of the simulator core is shared across the
/// whole batch instead of being re-fetched per job.
///
/// Each replica's results are **bit-identical** to running it alone —
/// the lanes share no simulation state, only the driver loop. The
/// wall-clock share attributed to each lane's [`SyntheticResult::perf`]
/// is the batch wall divided by the lane count (the perf layer is the
/// only place wall time surfaces, so canonical outputs are unaffected).
///
/// # Panics
///
/// Panics if `nets` and `workloads` differ in length.
pub fn run_synthetic_lockstep<W: SyntheticWorkload>(
    nets: &mut [Box<dyn Network + Send>],
    workloads: &mut [W],
    opts: SyntheticOptions,
) -> Vec<SyntheticResult> {
    run_synthetic_lockstep_watched(nets, workloads, opts, |_| None)
}

/// [`run_synthetic_lockstep`] with an optional per-lane [`Watchdog`]
/// (`mk_watchdog(lane)`). An interrupted lane stops ticking and records
/// the verdict in its [`SyntheticResult::interrupt`]; the other lanes
/// keep running to completion, so one stuck replica cannot hold the
/// whole batch hostage.
pub fn run_synthetic_lockstep_watched<W: SyntheticWorkload>(
    nets: &mut [Box<dyn Network + Send>],
    workloads: &mut [W],
    opts: SyntheticOptions,
    mut mk_watchdog: impl FnMut(usize) -> Option<Watchdog>,
) -> Vec<SyntheticResult> {
    assert_eq!(nets.len(), workloads.len(), "one workload per network lane");
    let wall_start = Instant::now();
    let mut drives: Vec<SyntheticDrive> = nets
        .iter()
        .enumerate()
        .map(|(lane, n)| {
            let mut d = SyntheticDrive::new(n.as_ref(), opts);
            if let Some(wd) = mk_watchdog(lane) {
                d.set_watchdog(wd);
            }
            d
        })
        .collect();
    loop {
        let mut live = false;
        for ((drive, net), workload) in drives.iter_mut().zip(&mut *nets).zip(&mut *workloads) {
            if !drive.done() {
                drive.tick(net.as_mut(), workload, None);
                live = true;
            }
        }
        if !live {
            break;
        }
    }
    let share = wall_start.elapsed() / nets.len().max(1) as u32;
    drives
        .into_iter()
        .zip(nets)
        .map(|(drive, net)| drive.finish(net.as_mut(), None, share))
        .collect()
}

/// The per-cycle state machine behind [`run_synthetic`]: source queues,
/// measurement-window bookkeeping, and scratch buffers for one synthetic
/// run, steppable one cycle at a time so a batch driver can interleave
/// several replicas ([`run_synthetic_lockstep`]).
pub struct SyntheticDrive {
    opts: SyntheticOptions,
    nodes: usize,
    source_queues: Vec<VecDeque<(NewPacket, u64)>>,
    /// Packet id -> (generation cycle, measured?). Keyed by the raw
    /// sequential id; hit once per accepted packet and once per delivery.
    gen_cycle: FastMap<(u64, bool)>,
    // Per-cycle scratch buffers, reused across the whole run.
    gen_buf: Vec<NewPacket>,
    delivery_buf: Vec<crate::packet::Delivery>,
    failure_buf: Vec<crate::FailedDelivery>,
    latency: LatencyStats,
    offered: u64,
    accepted: u64,
    delivered: u64,
    undeliverable: u64,
    measured_outstanding: u64,
    measure_start: u64,
    measure_end: u64,
    hard_end: u64,
    energy_start: Option<EnergyReport>,
    base_cycle: u64,
    /// Cycles simulated so far (`net.cycle() - base_cycle` after the
    /// last [`tick`](Self::tick)).
    rel: u64,
    /// Set when every measured packet drained early.
    drained: bool,
    /// Packets sitting in `source_queues` (cheap pending-work signal for
    /// the watchdog's livelock check).
    queued: u64,
    watchdog: Option<Watchdog>,
    interrupt: Option<Interrupt>,
}

impl SyntheticDrive {
    /// Prepares a drive for `net` (which supplies the node count and the
    /// base cycle). The network must not be stepped by anything else
    /// between `new` and [`finish`](Self::finish).
    pub fn new<N: Network + ?Sized>(net: &N, opts: SyntheticOptions) -> Self {
        let nodes = net.mesh().nodes();
        SyntheticDrive {
            opts,
            nodes,
            source_queues: vec![VecDeque::new(); nodes],
            gen_cycle: FastMap::new(),
            gen_buf: Vec::new(),
            delivery_buf: Vec::new(),
            failure_buf: Vec::new(),
            latency: LatencyStats::new(),
            offered: 0,
            accepted: 0,
            delivered: 0,
            undeliverable: 0,
            measured_outstanding: 0,
            measure_start: opts.warmup,
            measure_end: opts.warmup + opts.measure,
            hard_end: opts.warmup + opts.measure + opts.drain,
            energy_start: None,
            base_cycle: net.cycle(),
            rel: 0,
            drained: false,
            queued: 0,
            watchdog: None,
            interrupt: None,
        }
    }

    /// Attaches a watchdog; its checks run once per [`tick`](Self::tick).
    /// Without one the supervision cost is a single branch per cycle.
    pub fn set_watchdog(&mut self, wd: Watchdog) {
        if wd.is_armed() {
            self.watchdog = Some(wd);
        }
    }

    /// Whether the run is over: the hard cycle limit was reached, every
    /// measured packet resolved after the measurement window, or a
    /// watchdog stopped the run.
    pub fn done(&self) -> bool {
        self.drained || self.interrupt.is_some() || self.rel >= self.hard_end
    }

    /// Advances the run by one cycle: generate, inject, step the
    /// network, account deliveries and failures.
    pub fn tick<N: Network + ?Sized, W: SyntheticWorkload>(
        &mut self,
        net: &mut N,
        workload: &mut W,
        mut metrics: Option<&mut MetricsCollector>,
    ) {
        debug_assert!(!self.done(), "tick called on a finished drive");
        let cycle = net.cycle();
        let rel = cycle - self.base_cycle;
        let measuring = rel >= self.measure_start && rel < self.measure_end;
        if rel == self.measure_start {
            self.energy_start = Some(net.energy());
        }

        // Generate new packets (only until the measurement window closes;
        // afterwards we just drain).
        if rel < self.measure_end {
            self.gen_buf.clear();
            workload.generate_into(cycle, &mut self.gen_buf);
            for p in self.gen_buf.drain(..) {
                if measuring {
                    self.offered += 1;
                }
                if let Some(m) = metrics.as_deref_mut() {
                    m.on_offered(1);
                }
                self.source_queues[p.src.index()].push_back((p, cycle));
                self.queued += 1;
            }
        }

        // Progress (for livelock detection): any packet injected,
        // delivered, or terminally failed this cycle.
        let mut progress = false;

        // Try to inject from each source queue, in order.
        for q in &mut self.source_queues {
            while let Some((p, gen)) = q.front() {
                let (p, gen) = (p.clone(), *gen);
                match net.inject(p) {
                    Some(id) => {
                        q.pop_front();
                        self.queued -= 1;
                        progress = true;
                        let rel_gen = gen - self.base_cycle;
                        let measured = rel_gen >= self.measure_start && rel_gen < self.measure_end;
                        if measured {
                            self.accepted += 1;
                            self.measured_outstanding += 1;
                        }
                        self.gen_cycle.insert(id.0, (gen, measured));
                        if let Some(m) = metrics.as_deref_mut() {
                            m.on_accepted(1);
                        }
                    }
                    None => {
                        if let Some(m) = metrics.as_deref_mut() {
                            m.on_rejected(1);
                        }
                        break; // NIC full; retry next cycle
                    }
                }
            }
        }

        net.step();
        self.rel = net.cycle() - self.base_cycle;

        self.delivery_buf.clear();
        net.drain_deliveries_into(&mut self.delivery_buf);
        progress |= !self.delivery_buf.is_empty();
        for d in &self.delivery_buf {
            if let Some(&(gen, measured)) = self.gen_cycle.get(d.packet.0) {
                if let Some(m) = metrics.as_deref_mut() {
                    m.on_delivered(d.delivered_cycle.saturating_sub(gen));
                }
                if measured {
                    self.latency.record(d.delivered_cycle.saturating_sub(gen));
                    // Throughput counts only deliveries inside the
                    // measurement window: a saturated network keeps
                    // delivering during the drain, but that is backlog,
                    // not sustained throughput.
                    if d.delivered_cycle - self.base_cycle < self.measure_end {
                        self.delivered += 1;
                    }
                    self.measured_outstanding -= 1;
                }
            }
        }

        // Terminally-failed deliveries (retry cap under a fault plan)
        // resolve their packet just like a delivery would — otherwise the
        // drain loop would wait forever on packets that can never arrive.
        self.failure_buf.clear();
        net.drain_failures_into(&mut self.failure_buf);
        progress |= !self.failure_buf.is_empty();
        for f in &self.failure_buf {
            self.undeliverable += 1;
            if let Some(&(_, measured)) = self.gen_cycle.get(f.packet.0) {
                if measured {
                    self.measured_outstanding -= 1;
                }
            }
        }

        if let Some(m) = metrics {
            if m.at_boundary(rel) {
                let st = net.stats();
                let totals =
                    CycleTotals::from_stats(&st, net.in_flight() as u64, net.buffer_occupancy());
                m.end_cycle(rel, totals);
            }
        }

        // Early exit once every measured packet has drained.
        if rel + 1 >= self.measure_end && self.measured_outstanding == 0 {
            self.drained = true;
        }

        // Supervision: one branch when no watchdog is attached. The
        // pending-work closure is only evaluated if the livelock window
        // actually elapsed (it costs a virtual call on the network).
        if let Some(wd) = self.watchdog.as_mut() {
            if progress {
                wd.note_progress(self.rel);
            }
            let queued = self.queued;
            self.interrupt = wd.check(self.rel, || queued > 0 || net.in_flight() > 0);
        }
    }

    /// Closes the run and summarizes it. `wall` is the wall-clock time
    /// to attribute to this run's [`PerfProfile`] — the caller measures
    /// it because a lockstep batch splits one clock across its lanes.
    pub fn finish<N: Network + ?Sized>(
        self,
        net: &mut N,
        metrics: Option<&mut MetricsCollector>,
        wall: std::time::Duration,
    ) -> SyntheticResult {
        if let Some(m) = metrics {
            let st = net.stats();
            let totals =
                CycleTotals::from_stats(&st, net.in_flight() as u64, net.buffer_occupancy());
            m.finish(self.rel.saturating_sub(1), totals);
        }
        let energy_start = self.energy_start.unwrap_or_default();
        let denom = (self.nodes as f64) * (self.opts.measure as f64);
        SyntheticResult {
            latency: self.latency,
            offered_rate: self.offered as f64 / denom,
            accepted_rate: self.accepted as f64 / denom,
            delivered_rate: self.delivered as f64 / denom,
            energy: net.energy().delta_since(&energy_start),
            unfinished: self.measured_outstanding,
            undeliverable: self.undeliverable,
            interrupt: self.interrupt,
            perf: PerfProfile::new(self.rel, wall).with_phases(net.take_phase_breakdown()),
        }
    }
}

// ---------------------------------------------------------------------------
// Closed-loop trace replay
// ---------------------------------------------------------------------------

/// Identifier of a message within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u32);

/// A dependency on an earlier message: either its *full* delivery (every
/// destination reached) or its delivery at one specific destination.
///
/// Per-destination dependencies model coherence accurately: a data
/// response may be produced as soon as the broadcast request reaches the
/// owning cache — it does not wait for the request to reach all 63
/// snoopers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dep {
    /// The message depended upon.
    pub msg: MsgId,
    /// `None` = fully delivered; `Some(node)` = delivered at `node`.
    pub at: Option<NodeId>,
}

impl Dep {
    /// Dependency on full delivery.
    pub fn full(msg: MsgId) -> Dep {
        Dep { msg, at: None }
    }

    /// Dependency on delivery at one destination.
    pub fn at(msg: MsgId, node: NodeId) -> Dep {
        Dep {
            msg,
            at: Some(node),
        }
    }
}

impl From<MsgId> for Dep {
    fn from(msg: MsgId) -> Dep {
        Dep::full(msg)
    }
}

/// One message of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMessage {
    /// Trace-unique id.
    pub id: MsgId,
    /// Source node.
    pub src: NodeId,
    /// Destination(s).
    pub dests: DestSet,
    /// Operation kind.
    pub kind: PacketKind,
    /// Earliest cycle this message may inject (program order / compute
    /// time at the source).
    pub earliest: u64,
    /// Dependencies that must be satisfied before this message becomes
    /// eligible (e.g. the request a response answers, or the previous
    /// outstanding miss of the same core).
    pub deps: Vec<Dep>,
    /// Additional think time after the last dependency delivers.
    pub think: u64,
}

/// A complete workload trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Messages; ids must be unique and dependencies must refer to
    /// earlier-listed messages (no cycles).
    pub messages: Vec<TraceMessage>,
}

impl Trace {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Appends another trace's messages, remapping its ids (and internal
    /// dependencies) past this trace's id space and offsetting its
    /// `earliest` times by `at`. Useful for composing workload phases.
    ///
    /// # Panics
    ///
    /// Panics if either trace fails validation.
    pub fn append(&mut self, other: &Trace, at: u64) {
        self.validate().expect("base trace is valid");
        other.validate().expect("appended trace is valid");
        let base = self.messages.iter().map(|m| m.id.0 + 1).max().unwrap_or(0);
        for m in &other.messages {
            let mut m = m.clone();
            m.id = MsgId(m.id.0 + base);
            for d in &mut m.deps {
                d.msg = MsgId(d.msg.0 + base);
            }
            m.earliest += at;
            self.messages.push(m);
        }
    }

    /// Messages of one kind.
    pub fn of_kind(&self, kind: PacketKind) -> impl Iterator<Item = &TraceMessage> {
        self.messages.iter().filter(move |m| m.kind == kind)
    }

    /// Validates id uniqueness and acyclic, backward-pointing deps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for m in &self.messages {
            for d in &m.deps {
                if !seen.contains(&d.msg) {
                    return Err(format!(
                        "message {:?} depends on {:?} which does not precede it",
                        m.id, d.msg
                    ));
                }
            }
            if !seen.insert(m.id) {
                return Err(format!("duplicate message id {:?}", m.id));
            }
        }
        Ok(())
    }
}

/// Result of a trace replay.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Cycle at which the last message was fully delivered (the trace's
    /// network-limited completion time).
    pub completion_cycle: u64,
    /// Per-destination delivery latencies (from eligibility, i.e. network
    /// + NIC time only).
    pub latency: LatencyStats,
    /// Total energy spent.
    pub energy: EnergyReport,
    /// Messages fully delivered.
    pub completed: u64,
    /// Per-destination deliveries the network terminally gave up on
    /// (retry cap under a fault plan). Failed destinations still resolve
    /// the dependencies waiting on them, so the replay terminates.
    pub undeliverable: u64,
    /// True if the replay hit the cycle limit before completing.
    pub timed_out: bool,
    /// Set when a [`Watchdog`] stopped the replay early (`timed_out` is
    /// also set in that case).
    pub interrupt: Option<Interrupt>,
    /// Simulator throughput over the replay.
    pub perf: PerfProfile,
}

/// Options for [`run_trace`].
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Hard cycle limit (guards against livelock in a miscalibrated
    /// configuration).
    pub max_cycles: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            max_cycles: 10_000_000,
        }
    }
}

/// Replays a trace to completion, honouring message dependencies.
///
/// # Panics
///
/// Panics if the trace fails [`Trace::validate`].
pub fn run_trace<N: Network + ?Sized>(
    net: &mut N,
    trace: &Trace,
    opts: TraceOptions,
) -> TraceResult {
    run_trace_guarded(net, trace, opts, None, None)
}

/// [`run_trace`] with an optional time-series metrics collector (see
/// [`run_synthetic_observed`] for the sampling contract).
pub fn run_trace_observed<N: Network + ?Sized>(
    net: &mut N,
    trace: &Trace,
    opts: TraceOptions,
    metrics: Option<&mut MetricsCollector>,
) -> TraceResult {
    run_trace_guarded(net, trace, opts, metrics, None)
}

/// [`run_trace_observed`] with an optional [`Watchdog`]. An interrupt
/// marks the result `timed_out` and records the verdict; the partial
/// counters describe the replay up to the stop point.
pub fn run_trace_guarded<N: Network + ?Sized>(
    net: &mut N,
    trace: &Trace,
    opts: TraceOptions,
    mut metrics: Option<&mut MetricsCollector>,
    mut watchdog: Option<Watchdog>,
) -> TraceResult {
    trace.validate().expect("invalid trace");
    let wall_start = Instant::now();
    let energy_start = net.energy();
    let base_cycle = net.cycle();

    let n = trace.len();
    let nodes = net.mesh().nodes();
    let mut dep_remaining: Vec<u32> = Vec::with_capacity(n);
    // Dependents waiting on a message's full delivery / on one
    // destination of it.
    let mut full_deps: HashMap<MsgId, Vec<usize>> = HashMap::new();
    let mut dest_deps: HashMap<(MsgId, NodeId), Vec<usize>> = HashMap::new();
    let mut dest_lists: HashMap<MsgId, Vec<NodeId>> = HashMap::with_capacity(n);
    for m in &trace.messages {
        dest_lists.insert(m.id, m.dests.expand(m.src, nodes));
    }
    for (i, m) in trace.messages.iter().enumerate() {
        dep_remaining.push(m.deps.len() as u32);
        for d in &m.deps {
            match d.at {
                None => full_deps.entry(d.msg).or_default().push(i),
                Some(node) => {
                    assert!(
                        dest_lists[&d.msg].contains(&node),
                        "message {:?} depends on {:?} at {node}, which is not a destination",
                        m.id,
                        d.msg
                    );
                    dest_deps.entry((d.msg, node)).or_default().push(i);
                }
            }
        }
    }

    // ready_at[i]: cycle at which message i becomes eligible (valid once
    // dep_remaining[i] == 0). Initialized to `earliest`, bumped as deps
    // deliver.
    let mut ready_at: Vec<u64> = trace
        .messages
        .iter()
        .map(|m| base_cycle + m.earliest)
        .collect();
    // Min-heap of (ready_at, index) for dependency-free messages.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for i in 0..n {
        if dep_remaining[i] == 0 {
            heap.push(std::cmp::Reverse((ready_at[i], i)));
        }
    }

    // Per-source stall queues for messages that found the NIC full.
    let mut stalled: Vec<VecDeque<usize>> = vec![VecDeque::new(); nodes];
    // In-flight tracking: PacketId -> (msg index, remaining dests, eligible cycle).
    let mut in_flight: HashMap<PacketId, (usize, usize, u64)> = HashMap::new();
    let mut latency = LatencyStats::new();
    let mut completed = 0u64;
    let mut undeliverable = 0u64;
    let mut completion_cycle = base_cycle;
    let mut timed_out = false;
    let mut interrupt: Option<Interrupt> = None;

    let mut cycle = base_cycle;
    while completed < n as u64 {
        if cycle - base_cycle >= opts.max_cycles {
            timed_out = true;
            break;
        }
        // Progress this cycle (for livelock detection): any packet
        // injected, delivered, or terminally failed.
        let mut progress = false;

        // Move newly-eligible messages into their source's stall queue.
        while let Some(&std::cmp::Reverse((t, i))) = heap.peek() {
            if t > cycle {
                break;
            }
            heap.pop();
            stalled[trace.messages[i].src.index()].push_back(i);
            if let Some(m) = metrics.as_deref_mut() {
                m.on_offered(1);
            }
        }

        // Try to inject stalled messages in FIFO order per source.
        for q in &mut stalled {
            while let Some(&i) = q.front() {
                let m = &trace.messages[i];
                let ndests = dest_lists[&m.id].len();
                if ndests == 0 {
                    // Degenerate self-send: treat as immediately delivered.
                    q.pop_front();
                    completed += 1;
                    completion_cycle = completion_cycle.max(cycle);
                    for &dep_i in full_deps.get(&m.id).map(Vec::as_slice).unwrap_or(&[]) {
                        resolve_dep(
                            dep_i,
                            cycle,
                            &trace.messages,
                            &mut dep_remaining,
                            &mut ready_at,
                            &mut heap,
                        );
                    }
                    continue;
                }
                let p = NewPacket {
                    src: m.src,
                    dests: m.dests.clone(),
                    kind: m.kind,
                };
                match net.inject(p) {
                    Some(id) => {
                        q.pop_front();
                        progress = true;
                        in_flight.insert(id, (i, ndests, ready_at[i]));
                        if let Some(m) = metrics.as_deref_mut() {
                            m.on_accepted(1);
                        }
                    }
                    None => {
                        if let Some(m) = metrics.as_deref_mut() {
                            m.on_rejected(1);
                        }
                        break;
                    }
                }
            }
        }

        net.step();
        cycle = net.cycle();

        for d in net.drain_deliveries() {
            if let Some(entry) = in_flight.get_mut(&d.packet) {
                entry.1 -= 1;
                progress = true;
                latency.record(d.delivered_cycle.saturating_sub(entry.2));
                if let Some(m) = metrics.as_deref_mut() {
                    m.on_delivered(d.delivered_cycle.saturating_sub(entry.2));
                }
                let msg_id = trace.messages[entry.0].id;
                for &dep_i in dest_deps
                    .get(&(msg_id, d.dest))
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    resolve_dep(
                        dep_i,
                        d.delivered_cycle,
                        &trace.messages,
                        &mut dep_remaining,
                        &mut ready_at,
                        &mut heap,
                    );
                }
                if entry.1 == 0 {
                    let (i, _, _) = in_flight.remove(&d.packet).expect("entry exists");
                    completed += 1;
                    completion_cycle = completion_cycle.max(d.delivered_cycle);
                    let id = trace.messages[i].id;
                    for &dep_i in full_deps.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                        resolve_dep(
                            dep_i,
                            d.delivered_cycle,
                            &trace.messages,
                            &mut dep_remaining,
                            &mut ready_at,
                            &mut heap,
                        );
                    }
                }
            }
        }

        // A terminally-failed destination resolves its waiters exactly as
        // a delivery would (the depending core observes a failed
        // transaction and moves on); the message still counts toward
        // completion so the replay terminates instead of spinning.
        for f in net.drain_failures() {
            if let Some(entry) = in_flight.get_mut(&f.packet) {
                entry.1 -= 1;
                progress = true;
                undeliverable += 1;
                let msg_id = trace.messages[entry.0].id;
                for &dep_i in dest_deps
                    .get(&(msg_id, f.dest))
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    resolve_dep(
                        dep_i,
                        f.cycle,
                        &trace.messages,
                        &mut dep_remaining,
                        &mut ready_at,
                        &mut heap,
                    );
                }
                if entry.1 == 0 {
                    let (i, _, _) = in_flight.remove(&f.packet).expect("entry exists");
                    completed += 1;
                    completion_cycle = completion_cycle.max(f.cycle);
                    let id = trace.messages[i].id;
                    for &dep_i in full_deps.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                        resolve_dep(
                            dep_i,
                            f.cycle,
                            &trace.messages,
                            &mut dep_remaining,
                            &mut ready_at,
                            &mut heap,
                        );
                    }
                }
            }
        }

        if let Some(m) = metrics.as_deref_mut() {
            let rel = cycle - base_cycle;
            if rel > 0 && m.at_boundary(rel - 1) {
                let st = net.stats();
                let totals =
                    CycleTotals::from_stats(&st, net.in_flight() as u64, net.buffer_occupancy());
                m.end_cycle(rel - 1, totals);
            }
        }

        // Supervision: one branch when no watchdog is attached.
        if let Some(wd) = watchdog.as_mut() {
            let rel = cycle - base_cycle;
            if progress {
                wd.note_progress(rel);
            }
            let verdict = wd.check(rel, || {
                !in_flight.is_empty() || stalled.iter().any(|q| !q.is_empty())
            });
            if let Some(v) = verdict {
                timed_out = true;
                interrupt = Some(v);
                break;
            }
        }
    }

    if let Some(m) = metrics {
        let st = net.stats();
        let totals = CycleTotals::from_stats(&st, net.in_flight() as u64, net.buffer_occupancy());
        m.finish((cycle - base_cycle).saturating_sub(1), totals);
    }

    TraceResult {
        completion_cycle: completion_cycle - base_cycle,
        latency,
        energy: net.energy().delta_since(&energy_start),
        completed,
        undeliverable,
        timed_out,
        interrupt,
        perf: PerfProfile::new(cycle - base_cycle, wall_start.elapsed())
            .with_phases(net.take_phase_breakdown()),
    }
}

fn resolve_dep(
    dep_i: usize,
    delivered_cycle: u64,
    messages: &[TraceMessage],
    dep_remaining: &mut [u32],
    ready_at: &mut [u64],
    heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
) {
    let m = &messages[dep_i];
    ready_at[dep_i] = ready_at[dep_i].max(delivered_cycle + m.think);
    dep_remaining[dep_i] -= 1;
    if dep_remaining[dep_i] == 0 {
        heap.push(std::cmp::Reverse((ready_at[dep_i], dep_i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_validation_catches_forward_dep() {
        let t = Trace {
            messages: vec![TraceMessage {
                id: MsgId(0),
                src: NodeId(0),
                dests: DestSet::Unicast(NodeId(1)),
                kind: PacketKind::Data,
                earliest: 0,
                deps: vec![Dep::full(MsgId(1))],
                think: 0,
            }],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn trace_validation_catches_duplicate_id() {
        let m = TraceMessage {
            id: MsgId(0),
            src: NodeId(0),
            dests: DestSet::Unicast(NodeId(1)),
            kind: PacketKind::Data,
            earliest: 0,
            deps: vec![],
            think: 0,
        };
        let t = Trace {
            messages: vec![m.clone(), m],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn trace_validation_accepts_backward_deps() {
        let t = Trace {
            messages: vec![
                TraceMessage {
                    id: MsgId(0),
                    src: NodeId(0),
                    dests: DestSet::Unicast(NodeId(1)),
                    kind: PacketKind::ReadRequest,
                    earliest: 0,
                    deps: vec![],
                    think: 0,
                },
                TraceMessage {
                    id: MsgId(1),
                    src: NodeId(1),
                    dests: DestSet::Unicast(NodeId(0)),
                    kind: PacketKind::DataResponse,
                    earliest: 0,
                    deps: vec![Dep::full(MsgId(0))],
                    think: 2,
                },
            ],
        };
        assert!(t.validate().is_ok());
    }

    #[test]
    fn default_options_are_sane() {
        let s = SyntheticOptions::default();
        assert!(s.warmup > 0 && s.measure > 0 && s.drain > 0);
        assert!(TraceOptions::default().max_cycles > 1_000_000);
    }
}
