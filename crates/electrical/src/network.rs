//! The baseline electrical virtual-channel network simulator (Table 2).
//!
//! An input-queued VC router per node: 10 single-flit VCs per port,
//! credit-based flow control with wait-for-tail credit, separable
//! iSLIP VC and switch allocation, crossbar input speedup 4, and a 2- or
//! 3-cycle router pipeline (route lookahead + speculation collapse the
//! stages; a flit that arrives at cycle *T* departs at *T + delay* and
//! lands in the next router at *T + delay + 1*, one link cycle later).
//! Ejection bypasses the
//! crossbar: a flit reaching its destination router is accepted by the
//! processor one cycle after arrival. Broadcasts use pre-installed VCTM
//! trees ([`crate::vctm`]).

use crate::config::ElectricalConfig;
use crate::islip::Islip;
use crate::power::EnergyLedger;
use crate::vctm::{mask_of, tree_fork, TargetMask};
use phastlane_netsim::fastmap::FastMap;
use phastlane_netsim::fault::{productive_detour, FailedDelivery, FaultPlan};
use phastlane_netsim::geometry::{Direction, Mesh, NodeId, Port};
use phastlane_netsim::mask::NodeMask;
use phastlane_netsim::network::Network;
use phastlane_netsim::nic::Nic;
use phastlane_netsim::obs::{
    EventKind, FlightRecorder, Obs, Phase, PhaseBreakdown, PhaseProfiler, TraceBuffer,
};
use phastlane_netsim::packet::{Delivery, NewPacket, PacketId, PacketKind};
use phastlane_netsim::routing::xy_first_hop;
use phastlane_netsim::stats::{EnergyReport, NetworkStats};
use phastlane_netsim::telemetry::LinkCounters;

/// Immutable identity of a packet.
#[derive(Debug, Clone, Copy)]
struct Core {
    id: PacketId,
    src: NodeId,
    kind: PacketKind,
    injected_cycle: u64,
}

/// Routing state a flit carries.
#[derive(Debug, Clone, Copy)]
enum Route {
    Unicast(NodeId),
    /// A VCTM multicast: remaining targets of this subtree.
    Tree(TargetMask),
}

/// One pending output branch of a flit (unicast flits have one; tree
/// flits fork).
#[derive(Debug, Clone, Copy)]
struct Branch {
    out: Direction,
    /// Subtree targets carried by this branch (empty for unicast).
    mask: TargetMask,
    /// Downstream VC reserved by the VC allocator.
    out_vc: Option<usize>,
    done: bool,
}

/// A flit occupying a VC.
#[derive(Debug, Clone)]
struct Flit {
    core: Core,
    route: Route,
    in_port: Port,
    eligible_at: u64,
    branches: Vec<Branch>,
    /// Local delivery pending at this cycle (ejection bypass).
    eject_at: Option<u64>,
}

impl Flit {
    fn finished(&self) -> bool {
        self.eject_at.is_none() && self.branches.iter().all(|b| b.done)
    }
}

/// Per-router state.
#[derive(Debug)]
struct Router {
    /// `vcs[port][vc]`.
    vcs: Vec<Vec<Option<Flit>>>,
    /// `credits[dir][vc]`: a free slot at the downstream input port.
    credits: Vec<Vec<bool>>,
    /// VC-allocator rotation per output direction (flattened port*V+vc).
    va_ptr: Vec<usize>,
    /// Switch allocator state (5 inputs x 4 outputs).
    sa: Islip,
    /// Round-robin VC selector per (input port, output dir).
    vc_sel: Vec<Vec<usize>>,
    /// Number of occupied VCs (fast-path: idle routers skip every phase).
    occupied: usize,
}

impl Router {
    fn new(cfg: &ElectricalConfig) -> Self {
        let v = cfg.vcs_per_port;
        Router {
            vcs: (0..5).map(|_| vec![None; v]).collect(),
            credits: (0..4).map(|_| vec![true; v]).collect(),
            va_ptr: vec![0; 4],
            sa: Islip::new(5, 4),
            vc_sel: (0..5).map(|_| vec![0; 4]).collect(),
            occupied: 0,
        }
    }
}

/// A flit in flight on a link.
#[derive(Debug)]
struct Arrival {
    router: usize,
    port: usize,
    vc: usize,
    flit: Flit,
}

/// A credit travelling back upstream.
#[derive(Debug, Clone, Copy)]
struct CreditReturn {
    router: usize,
    dir: usize,
    vc: usize,
}

/// The baseline electrical network.
#[derive(Debug)]
pub struct ElectricalNetwork {
    cfg: ElectricalConfig,
    cycle: u64,
    routers: Vec<Router>,
    nics: Vec<Nic<(Core, Route)>>,
    incoming: Vec<Arrival>,
    credit_returns: Vec<CreditReturn>,
    /// Remaining undelivered targets per packet id (keyed by the raw
    /// sequential id, so open-addressing probes stay short).
    outstanding: FastMap<usize>,
    deliveries: Vec<Delivery>,
    next_id: u64,
    /// Sources whose VCTM tree is already installed (dense, per node).
    warm_trees: Vec<bool>,
    energy: EnergyLedger,
    stats: NetworkStats,
    links: LinkCounters,
    /// Observability handle: one branch per emit site when disabled.
    obs: Obs,
    /// Hot-loop phase profiler: one branch per mark site when disabled.
    profiler: PhaseProfiler,
    /// Scheduled device failures; the empty plan is zero-effect (every
    /// fault hook is gated on it).
    fault_plan: FaultPlan,
    /// Destinations terminally given up on, awaiting `drain_failures`.
    failures: Vec<FailedDelivery>,
}

/// How long a flit may sit unserviced before a fault plan declares its
/// remaining targets undeliverable (the electrical livelock guard; only
/// consulted while a fault plan is installed). Far beyond any contention
/// stall the 1-flit-per-VC router can produce on an 8x8 mesh.
const STALL_ABANDON_CYCLES: u64 = 2_000;

impl ElectricalNetwork {
    /// Builds a network from a configuration.
    pub fn new(cfg: ElectricalConfig) -> Self {
        assert_eq!(
            cfg.entries_per_vc, 1,
            "this model implements the paper's 1-entry-per-VC configuration"
        );
        let mesh = cfg.mesh;
        let nodes = cfg.mesh.nodes();
        let routers = (0..nodes).map(|_| Router::new(&cfg)).collect();
        let nics = (0..nodes).map(|_| Nic::new(cfg.nic_entries)).collect();
        let energy = EnergyLedger::new(nodes);
        ElectricalNetwork {
            cfg,
            cycle: 0,
            routers,
            nics,
            incoming: Vec::new(),
            credit_returns: Vec::new(),
            outstanding: FastMap::new(),
            deliveries: Vec::new(),
            next_id: 0,
            warm_trees: vec![false; nodes],
            energy,
            stats: NetworkStats::default(),
            links: LinkCounters::for_mesh(mesh),
            obs: Obs::off(),
            profiler: PhaseProfiler::off(),
            fault_plan: FaultPlan::new(),
            failures: Vec::new(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &ElectricalConfig {
        &self.cfg
    }

    fn make_flit(&mut self, at: NodeId, core: Core, route: Route, in_port: Port, now: u64) -> Flit {
        let mesh = self.cfg.mesh;
        let (branches, eject) = match route {
            Route::Unicast(dest) => {
                if dest == at {
                    (Vec::new(), true)
                } else {
                    let mut out = xy_first_hop(mesh, at, dest).expect("dest != at");
                    if !self.fault_plan.is_empty() && self.fault_plan.blocked(now, mesh, at, out) {
                        // Dead preferred link: detour through the other
                        // dimension when that still makes progress toward
                        // the destination. (When it does not, the branch
                        // keeps its dead output; the VC allocator will
                        // never grant it and the stall-abandon guard
                        // eventually declares the target undeliverable.)
                        if let Some((dir, _)) =
                            productive_detour(&self.fault_plan, now, mesh, at, dest)
                        {
                            out = dir;
                            self.stats.rerouted += 1;
                            self.obs.emit(
                                now,
                                EventKind::FaultReroute,
                                at,
                                Some(dir),
                                Some(core.id),
                            );
                        }
                    }
                    (
                        vec![Branch {
                            out,
                            mask: NodeMask::EMPTY,
                            out_vc: None,
                            done: false,
                        }],
                        false,
                    )
                }
            }
            Route::Tree(mask) => {
                let (forks, deliver) = tree_fork(mesh, core.src, at, mask);
                let branches = forks
                    .iter()
                    .map(|f| Branch {
                        out: f.out,
                        mask: f.submask,
                        out_vc: None,
                        done: false,
                    })
                    .collect();
                (branches, deliver)
            }
        };
        Flit {
            core,
            route,
            in_port,
            eligible_at: now + self.cfg.router_delay,
            branches,
            eject_at: eject.then_some(now + 1),
        }
    }

    /// Records one terminally-failed destination of an abandoned flit
    /// (stall-abandon guard): the delivery is never going to happen, so
    /// the packet's outstanding count shrinks exactly as a delivery
    /// would, keeping closed-loop harnesses live.
    #[allow(clippy::too_many_arguments)]
    fn record_failure(
        outstanding: &mut FastMap<usize>,
        failures: &mut Vec<FailedDelivery>,
        stats: &mut NetworkStats,
        obs: &mut Obs,
        core: Core,
        dest: NodeId,
        at: NodeId,
        now: u64,
    ) {
        stats.undeliverable += 1;
        failures.push(FailedDelivery {
            packet: core.id,
            src: core.src,
            dest,
            cycle: now,
        });
        obs.emit(now, EventKind::Undeliverable, at, None, Some(core.id));
        let rem = outstanding
            .get_mut(core.id.0)
            .expect("failure for unknown packet");
        *rem -= 1;
        if *rem == 0 {
            outstanding.remove(core.id.0);
        }
    }

    fn deliver(
        outstanding: &mut FastMap<usize>,
        deliveries: &mut Vec<Delivery>,
        stats: &mut NetworkStats,
        obs: &mut Obs,
        core: Core,
        dest: NodeId,
        now: u64,
    ) {
        obs.emit(now, EventKind::Eject, dest, None, Some(core.id));
        deliveries.push(Delivery {
            packet: core.id,
            src: core.src,
            dest,
            injected_cycle: core.injected_cycle,
            delivered_cycle: now,
        });
        stats.delivered += 1;
        let lat = now - core.injected_cycle;
        stats.latency.record(lat);
        stats.latency_by_kind.record(core.kind, lat);
        let rem = outstanding
            .get_mut(core.id.0)
            .expect("unknown packet delivered");
        *rem -= 1;
        if *rem == 0 {
            outstanding.remove(core.id.0);
        }
    }

    /// Total occupied VCs (diagnostics).
    pub fn occupied_vcs(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.vcs.iter().flatten().filter(|s| s.is_some()).count())
            .sum()
    }
}

impl Network for ElectricalNetwork {
    fn name(&self) -> String {
        self.cfg.label()
    }

    fn mesh(&self) -> Mesh {
        self.cfg.mesh
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn inject(&mut self, packet: NewPacket) -> Option<PacketId> {
        let nodes = self.cfg.mesh.nodes();
        let dests = packet.dests.expand(packet.src, nodes);
        let id = PacketId(self.next_id);
        if dests.is_empty() {
            self.next_id += 1;
            self.stats.injected += 1;
            self.stats.delivered += 1;
            self.obs
                .emit(self.cycle, EventKind::Inject, packet.src, None, Some(id));
            self.obs
                .emit(self.cycle, EventKind::Eject, packet.src, None, Some(id));
            self.deliveries.push(Delivery {
                packet: id,
                src: packet.src,
                dest: packet.src,
                injected_cycle: self.cycle,
                delivered_cycle: self.cycle,
            });
            return Some(id);
        }
        let route = if dests.len() == 1 {
            Route::Unicast(dests[0])
        } else {
            Route::Tree(mask_of(&dests))
        };
        let core = Core {
            id,
            src: packet.src,
            kind: packet.kind,
            injected_cycle: self.cycle,
        };
        if self.nics[packet.src.index()]
            .try_push((core, route))
            .is_err()
        {
            self.obs
                .emit(self.cycle, EventKind::NicRetry, packet.src, None, None);
            return None;
        }
        self.outstanding.insert(id.0, dests.len());
        self.stats.injected += 1;
        self.next_id += 1;
        self.obs
            .emit(self.cycle, EventKind::Inject, packet.src, None, Some(id));
        Some(id)
    }

    fn step(&mut self) {
        let now = self.cycle;
        let mesh = self.cfg.mesh;
        let vcs_per_port = self.cfg.vcs_per_port;
        self.profiler.begin_cycle();
        let delivered_before = self.deliveries.len();

        // Fault bookkeeping: edge events for faults starting or clearing
        // this cycle. Skipped entirely (zero-effect) with no plan.
        let fault_active = !self.fault_plan.is_empty();
        if fault_active {
            for (fault, injected) in self.fault_plan.edges_at(now) {
                let kind = if injected {
                    EventKind::FaultInjected
                } else {
                    EventKind::FaultCleared
                };
                self.obs.emit(now, kind, fault.site(), fault.port(), None);
            }
        }
        self.profiler.mark(Phase::Fault);

        // Phase 1: credits return.
        self.profiler
            .add_work(Phase::Drain, self.credit_returns.len() as u64);
        for cr in std::mem::take(&mut self.credit_returns) {
            debug_assert!(!self.routers[cr.router].credits[cr.dir][cr.vc]);
            self.routers[cr.router].credits[cr.dir][cr.vc] = true;
        }

        // Phase 2: link arrivals land in their reserved VCs.
        for a in std::mem::take(&mut self.incoming) {
            let r = &mut self.routers[a.router];
            let slot = &mut r.vcs[a.port][a.vc];
            debug_assert!(slot.is_none(), "reserved VC occupied");
            self.energy.on_buffer_write();
            *slot = Some(a.flit);
            r.occupied += 1;
        }
        self.profiler.mark(Phase::Drain);

        // Phase 3: ejection bypass — deliver flits one cycle after
        // arrival, without the crossbar.
        for r_idx in 0..self.routers.len() {
            if self.routers[r_idx].occupied == 0 {
                continue;
            }
            let here = NodeId(r_idx as u16);
            if fault_active && self.fault_plan.router_stuck(now, here) {
                continue; // a stuck router cannot even eject
            }
            for port in 0..5 {
                for vc in 0..vcs_per_port {
                    if let Some(flit) = self.routers[r_idx].vcs[port][vc].as_mut() {
                        if let Some(t) = flit.eject_at {
                            if t <= now {
                                flit.eject_at = None;
                                let core = flit.core;
                                self.energy.on_buffer_read();
                                Self::deliver(
                                    &mut self.outstanding,
                                    &mut self.deliveries,
                                    &mut self.stats,
                                    &mut self.obs,
                                    core,
                                    here,
                                    now,
                                );
                            }
                        }
                    }
                }
            }
        }

        self.profiler.add_work(
            Phase::Eject,
            (self.deliveries.len() - delivered_before) as u64,
        );
        self.profiler.mark(Phase::Eject);

        // Phase 4: injection — one flit per node per cycle into a free
        // local-port VC.
        let mut route_work = 0u64;
        for r_idx in 0..self.routers.len() {
            let here = NodeId(r_idx as u16);
            let local = Port::Local.index();
            if self.nics[r_idx].is_empty() {
                continue;
            }
            if fault_active && self.fault_plan.router_stuck(now, here) {
                // A stuck router accepts no new traffic — and a permanent
                // fault would strand its own NIC queue forever. Age out
                // entries waiting far past any transient window, failing
                // their targets terminally so accounting stays closed.
                while let Some((core, _)) = self.nics[r_idx].front() {
                    if now.saturating_sub(core.injected_cycle) <= STALL_ABANDON_CYCLES {
                        break;
                    }
                    let (core, route) = self.nics[r_idx].pop().expect("checked non-empty");
                    self.stats.retry_exhausted += 1;
                    match route {
                        Route::Unicast(dest) => Self::record_failure(
                            &mut self.outstanding,
                            &mut self.failures,
                            &mut self.stats,
                            &mut self.obs,
                            core,
                            dest,
                            here,
                            now,
                        ),
                        Route::Tree(mask) => {
                            for t in mask.iter() {
                                Self::record_failure(
                                    &mut self.outstanding,
                                    &mut self.failures,
                                    &mut self.stats,
                                    &mut self.obs,
                                    core,
                                    t,
                                    here,
                                    now,
                                );
                            }
                        }
                    }
                }
                continue;
            }
            let Some(vc) = (0..vcs_per_port).find(|&v| self.routers[r_idx].vcs[local][v].is_none())
            else {
                continue;
            };
            let (core, route) = self.nics[r_idx].pop().expect("checked non-empty");
            let mut flit = self.make_flit(here, core, route, Port::Local, now);
            if let Route::Tree(_) = route {
                if self.cfg.vctm_setup_penalty > 0
                    && !std::mem::replace(&mut self.warm_trees[core.src.index()], true)
                {
                    flit.eligible_at += self.cfg.vctm_setup_penalty;
                }
            }
            self.energy.on_buffer_write();
            self.routers[r_idx].vcs[local][vc] = Some(flit);
            self.routers[r_idx].occupied += 1;
            route_work += 1;
        }
        self.profiler.add_work(Phase::Route, route_work);
        self.profiler.mark(Phase::Route);

        // Phase 5: VC allocation — grant free downstream VCs to eligible
        // branches, round-robin per output direction.
        let mut arb_work = 0u64;
        for r_idx in 0..self.routers.len() {
            if self.routers[r_idx].occupied == 0 {
                continue;
            }
            for dir in Direction::ALL {
                let d = Port::Dir(dir).index();
                if mesh.neighbor(NodeId(r_idx as u16), dir).is_none() {
                    continue;
                }
                if fault_active
                    && self
                        .fault_plan
                        .blocked(now, mesh, NodeId(r_idx as u16), dir)
                {
                    continue; // never grant VCs across a faulted link
                }
                // Gather requesters (port, vc, branch index) in flattened
                // order.
                let mut requesters: Vec<(usize, usize, usize)> = Vec::new();
                for port in 0..5 {
                    for vc in 0..vcs_per_port {
                        if let Some(f) = self.routers[r_idx].vcs[port][vc].as_ref() {
                            if f.eligible_at > now {
                                continue;
                            }
                            for (bi, b) in f.branches.iter().enumerate() {
                                if b.out == dir && b.out_vc.is_none() && !b.done {
                                    requesters.push((port, vc, bi));
                                }
                            }
                        }
                    }
                }
                if requesters.is_empty() {
                    continue;
                }
                // Rotate requesters to start at the VA pointer.
                let ptr = self.routers[r_idx].va_ptr[d];
                let split = requesters
                    .iter()
                    .position(|&(p, v, _)| p * vcs_per_port + v >= ptr)
                    .unwrap_or(0);
                requesters.rotate_left(split);

                let mut free_vcs: Vec<usize> = (0..vcs_per_port)
                    .filter(|&v| self.routers[r_idx].credits[d][v])
                    .collect();
                free_vcs.reverse(); // pop() yields ascending order
                for (port, vc, bi) in requesters {
                    let Some(out_vc) = free_vcs.pop() else { break };
                    self.routers[r_idx].credits[d][out_vc] = false;
                    let f = self.routers[r_idx].vcs[port][vc]
                        .as_mut()
                        .expect("requester exists");
                    f.branches[bi].out_vc = Some(out_vc);
                    self.energy.on_allocation();
                    arb_work += 1;
                    self.routers[r_idx].va_ptr[d] = port * vcs_per_port + vc + 1;
                }
            }
        }
        self.profiler.add_work(Phase::Arbitrate, arb_work);
        self.profiler.mark(Phase::Arbitrate);

        // Phase 6: switch allocation (iSLIP) and traversal.
        for r_idx in 0..self.routers.len() {
            if self.routers[r_idx].occupied == 0 {
                continue;
            }
            let here = NodeId(r_idx as u16);
            if fault_active && self.fault_plan.router_stuck(now, here) {
                continue; // nothing moves through a stuck router
            }
            // Candidate branch per (input port, output dir), chosen
            // round-robin over VCs.
            let mut candidate: [[Option<(usize, usize)>; 4]; 5] = Default::default();
            let mut requests: Vec<Vec<usize>> = vec![Vec::new(); 5];
            for port in 0..5 {
                for dir in Direction::ALL {
                    let d = Port::Dir(dir).index();
                    if fault_active && self.fault_plan.blocked(now, mesh, here, dir) {
                        continue; // granted VCs across a now-dead link wait
                    }
                    let sel = self.routers[r_idx].vc_sel[port][d];
                    for k in 0..vcs_per_port {
                        let vc = (sel + k) % vcs_per_port;
                        let Some(f) = self.routers[r_idx].vcs[port][vc].as_ref() else {
                            continue;
                        };
                        if f.eligible_at > now {
                            continue;
                        }
                        if let Some(bi) = f
                            .branches
                            .iter()
                            .position(|b| b.out == dir && b.out_vc.is_some() && !b.done)
                        {
                            candidate[port][d] = Some((vc, bi));
                            requests[port].push(d);
                            break;
                        }
                    }
                }
            }
            let matches = {
                let r = &mut self.routers[r_idx];
                r.sa.allocate(&requests, self.cfg.input_speedup, self.cfg.islip_iterations)
            };
            for (port, d) in matches {
                let (vc, bi) = candidate[port][d].expect("matched request had a candidate");
                let dir = match Port::ALL[d] {
                    Port::Dir(dir) => dir,
                    Port::Local => unreachable!("outputs are directions"),
                };
                let next = mesh.neighbor(here, dir).expect("VA only grants real links");
                let (core, route_mask, out_vc) = {
                    let f = self.routers[r_idx].vcs[port][vc]
                        .as_mut()
                        .expect("candidate flit exists");
                    let b = &mut f.branches[bi];
                    let out_vc = b.out_vc.expect("SA requires an allocated VC");
                    b.done = true;
                    (f.core, b.mask, out_vc)
                };
                self.energy.on_allocation();
                self.energy.on_buffer_read();
                self.energy.on_crossbar();
                self.energy.on_link();
                self.links.record(here, dir);
                self.obs.emit(
                    now,
                    EventKind::LinkTraversal,
                    here,
                    Some(dir),
                    Some(core.id),
                );
                self.routers[r_idx].vc_sel[port][d] = (vc + 1) % vcs_per_port;
                let route = if route_mask.is_empty() {
                    match self.routers[r_idx].vcs[port][vc].as_ref().unwrap().route {
                        Route::Unicast(dest) => Route::Unicast(dest),
                        Route::Tree(_) => unreachable!("tree branches carry masks"),
                    }
                } else {
                    Route::Tree(route_mask)
                };
                let in_port = Port::Dir(dir.opposite());
                let flit = self.make_flit(next, core, route, in_port, now + 1);
                self.incoming.push(Arrival {
                    router: next.index(),
                    port: in_port.index(),
                    vc: out_vc,
                    flit,
                });
            }
        }

        // Link traversals this cycle = arrivals queued for the next one.
        self.profiler
            .add_work(Phase::Traverse, self.incoming.len() as u64);
        self.profiler.mark(Phase::Traverse);

        // Phase 7: free finished VCs and send credits upstream.
        for r_idx in 0..self.routers.len() {
            if self.routers[r_idx].occupied == 0 {
                continue;
            }
            let here = NodeId(r_idx as u16);
            for port in 0..5 {
                for vc in 0..vcs_per_port {
                    let (finished, abandon) = match self.routers[r_idx].vcs[port][vc].as_ref() {
                        None => (false, false),
                        Some(f) => (
                            f.finished(),
                            fault_active
                                && now.saturating_sub(f.eligible_at) > STALL_ABANDON_CYCLES,
                        ),
                    };
                    if !finished && !abandon {
                        continue;
                    }
                    let flit = self.routers[r_idx].vcs[port][vc].take().expect("checked");
                    self.routers[r_idx].occupied -= 1;
                    if abandon && !finished {
                        // Stall-abandon: a fault plan is active and this
                        // flit has been unserviceable for far longer than
                        // congestion alone could explain. Its remaining
                        // targets are terminally undeliverable; reserved
                        // downstream VCs are released so the fabric around
                        // the fault keeps flowing.
                        self.stats.retry_exhausted += 1;
                        for b in &flit.branches {
                            if !b.done {
                                if let Some(ovc) = b.out_vc {
                                    let d = Port::Dir(b.out).index();
                                    self.routers[r_idx].credits[d][ovc] = true;
                                }
                            }
                        }
                        if flit.eject_at.is_some() {
                            Self::record_failure(
                                &mut self.outstanding,
                                &mut self.failures,
                                &mut self.stats,
                                &mut self.obs,
                                flit.core,
                                here,
                                here,
                                now,
                            );
                        }
                        for b in &flit.branches {
                            if b.done {
                                continue;
                            }
                            match flit.route {
                                Route::Unicast(dest) => Self::record_failure(
                                    &mut self.outstanding,
                                    &mut self.failures,
                                    &mut self.stats,
                                    &mut self.obs,
                                    flit.core,
                                    dest,
                                    here,
                                    now,
                                ),
                                Route::Tree(_) => {
                                    for t in b.mask.iter() {
                                        Self::record_failure(
                                            &mut self.outstanding,
                                            &mut self.failures,
                                            &mut self.stats,
                                            &mut self.obs,
                                            flit.core,
                                            t,
                                            here,
                                            now,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    if let Port::Dir(in_dir) = flit.in_port {
                        let upstream = mesh
                            .neighbor(here, in_dir)
                            .expect("flit arrived over a real link");
                        let up_out = Port::Dir(in_dir.opposite()).index();
                        self.credit_returns.push(CreditReturn {
                            router: upstream.index(),
                            dir: up_out,
                            vc,
                        });
                    }
                }
            }
        }

        // Phase 8: leakage, clock. Phases 7–8 are resource recycling, so
        // their time accrues to the drain phase alongside phases 1–2.
        self.energy.on_cycle();
        self.cycle += 1;
        self.profiler.mark(Phase::Drain);
    }

    fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    fn set_fault_plan(&mut self, plan: FaultPlan, _seed: u64) {
        // The electrical model uses no fault-path randomness: link and
        // router faults mask deterministically, and the optical-only
        // droop/bit-error faults do not apply here.
        self.fault_plan = plan;
    }

    fn drain_failures(&mut self) -> Vec<FailedDelivery> {
        std::mem::take(&mut self.failures)
    }

    fn drain_failures_into(&mut self, out: &mut Vec<FailedDelivery>) {
        out.append(&mut self.failures);
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn energy(&self) -> EnergyReport {
        self.energy.report()
    }

    fn stats(&self) -> NetworkStats {
        self.stats.clone()
    }

    fn link_counters(&self) -> LinkCounters {
        self.links.clone()
    }

    fn set_trace(&mut self, trace: TraceBuffer) {
        self.obs.attach_trace(trace);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.obs.take()
    }

    fn set_phase_profiler(&mut self, profiler: PhaseProfiler) {
        self.profiler = profiler;
    }

    fn take_phase_breakdown(&mut self) -> Option<PhaseBreakdown> {
        self.profiler.take_breakdown()
    }

    fn set_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.obs.attach_flight(recorder);
    }

    fn take_flight_recorder(&mut self) -> Option<FlightRecorder> {
        self.obs.take_flight()
    }

    fn buffer_occupancy(&self) -> u64 {
        self.occupied_vcs() as u64
    }
}
