//! Workspace-level property-based tests: invariants that must hold for
//! arbitrary workloads on both networks, checked with proptest.

use proptest::collection::vec;
use proptest::prelude::*;
use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::packet::PacketKind;
use phastlane_repro::netsim::{DestSet, Network, NewPacket, NodeId};
use phastlane_repro::optical::{BufferDepth, PhastlaneConfig, PhastlaneNetwork};

/// Drives a set of packets to completion and returns the sorted
/// (src, dest) delivery pairs plus drop statistics.
fn drive(net: &mut dyn Network, packets: &[NewPacket]) -> (Vec<(u16, u16)>, u64) {
    let mut expected = 0usize;
    let mut queue: Vec<NewPacket> = packets.to_vec();
    let mut guard = 0u64;
    while !queue.is_empty() || net.in_flight() > 0 {
        queue.retain(|p| {
            let nodes = net.mesh().nodes();
            let n = p.dests.expand(p.src, nodes).len();
            match net.inject(p.clone()) {
                Some(_) => {
                    expected += n.max(1).min(n + 1); // per-destination deliveries
                    false
                }
                None => true,
            }
        });
        net.step();
        guard += 1;
        assert!(guard < 60_000, "workload did not drain");
    }
    let deliveries = net.drain_deliveries();
    let mut pairs: Vec<(u16, u16)> = deliveries.iter().map(|d| (d.src.0, d.dest.0)).collect();
    pairs.sort_unstable();
    let _ = expected;
    (pairs, net.stats().dropped)
}

fn arb_packet() -> impl Strategy<Value = NewPacket> {
    let node = 0..64u16;
    let kind = prop_oneof![
        Just(PacketKind::Data),
        Just(PacketKind::ReadRequest),
        Just(PacketKind::DataResponse),
        Just(PacketKind::Writeback),
    ];
    (node.clone(), node, kind, 0..10u8).prop_map(|(src, dst, kind, sel)| {
        let dests = match sel {
            0 => DestSet::Broadcast,
            1..=2 => DestSet::Multicast(vec![
                NodeId(dst),
                NodeId(dst.wrapping_mul(13) % 64),
                NodeId(dst.wrapping_add(17) % 64),
            ]),
            _ => DestSet::Unicast(NodeId(dst)),
        };
        NewPacket { src: NodeId(src), dests, kind }
    })
}

/// Expected delivery multiset for a packet list.
fn expected_pairs(packets: &[NewPacket]) -> Vec<(u16, u16)> {
    let mut pairs = Vec::new();
    for p in packets {
        let dests = p.dests.expand(p.src, 64);
        if dests.is_empty() {
            pairs.push((p.src.0, p.src.0)); // self-send
        } else {
            for d in dests {
                pairs.push((p.src.0, d.0));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every injected packet is delivered to exactly its destination set,
    /// no duplicates, no losses — on Phastlane, despite drops and
    /// retransmissions.
    #[test]
    fn optical_delivers_exactly_once(packets in vec(arb_packet(), 1..25)) {
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        let (pairs, _) = drive(&mut net, &packets);
        prop_assert_eq!(pairs, expected_pairs(&packets));
    }

    /// Same conservation law for the electrical baseline (which must also
    /// never drop).
    #[test]
    fn electrical_delivers_exactly_once(packets in vec(arb_packet(), 1..25)) {
        let mut net = ElectricalNetwork::new(ElectricalConfig::electrical3());
        let (pairs, dropped) = drive(&mut net, &packets);
        prop_assert_eq!(pairs, expected_pairs(&packets));
        prop_assert_eq!(dropped, 0);
    }

    /// Conservation holds even with pathologically small optical buffers
    /// (heavy drop/retransmit activity).
    #[test]
    fn optical_conserves_with_tiny_buffers(packets in vec(arb_packet(), 1..15)) {
        let cfg = PhastlaneConfig::with_hops_and_buffers(4, BufferDepth::Finite(1));
        let mut net = PhastlaneNetwork::new(cfg);
        let (pairs, _) = drive(&mut net, &packets);
        prop_assert_eq!(pairs, expected_pairs(&packets));
    }

    /// Energy is monotone: it never decreases as the simulation advances.
    #[test]
    fn energy_monotone(packets in vec(arb_packet(), 1..10), steps in 1..50u32) {
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        for p in packets {
            let _ = net.inject(p);
        }
        let mut last = net.energy().total_pj();
        for _ in 0..steps {
            net.step();
            let now = net.energy().total_pj();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Phastlane delivery latency is bounded under a finite workload: no
    /// packet livelocks even with drops.
    #[test]
    fn optical_latency_bounded(packets in vec(arb_packet(), 1..20)) {
        let mut net = PhastlaneNetwork::new(PhastlaneConfig::optical4());
        for p in &packets {
            let _ = net.inject(p.clone());
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step();
            guard += 1;
            prop_assert!(guard < 20_000);
        }
        for d in net.drain_deliveries() {
            prop_assert!(d.latency() < 10_000);
        }
    }
}
