//! The `phastlane analyze` subcommand: static verification with no
//! simulation — channel-dependency deadlock analysis, residual
//! connectivity under a fault plan, the optical loss-budget envelope,
//! lab-spec preflight, and the determinism-hygiene source lint.
//!
//! Four modes:
//!
//! * `phastlane analyze [--net N] [--mesh WxH] [--fault-plan F |
//!   --fault-rate R] [--fault-seed S] [--json] [--out FILE]` — analyze
//!   one network configuration: CDG acyclicity (with a minimal witness
//!   cycle when it fails), per-pair reachability, optical envelope.
//! * `phastlane analyze --ring LEN` — the known-deadlocking reference:
//!   naive DOR on a LEN-node unidirectional torus ring; always yields a
//!   concrete witness cycle.
//! * `phastlane analyze --spec FILE [--json]` — lint a lab spec;
//!   errors (statically doomed matrix) exit non-zero.
//! * `phastlane analyze --src [--root DIR] [--allow FILE]
//!   [--emit-allow FILE]` — scan workspace sources for determinism
//!   hazards; violations or stale allowlist entries exit non-zero.

use crate::args::{ArgError, Parsed};
use crate::commands::parse_mesh;
use phastlane_analyze::cdg::Cdg;
use phastlane_analyze::lablint::{lint_spec, Level};
use phastlane_analyze::reach::{optical_envelope, residual_connectivity, OpticalEnvelope};
use phastlane_analyze::srclint;
use phastlane_lab::LabSpec;
use phastlane_netsim::fault::FaultPlan;
use phastlane_netsim::geometry::Mesh;
use phastlane_netsim::obs::json::JsonValue;
use std::path::Path;

fn parse_plan(p: &Parsed, mesh: Mesh) -> Result<FaultPlan, ArgError> {
    match (p.get("fault-plan"), p.get("fault-rate")) {
        (Some(_), Some(_)) => Err(ArgError(
            "--fault-plan and --fault-rate are mutually exclusive".into(),
        )),
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            FaultPlan::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))
        }
        (None, Some(rate)) => {
            let rate: f64 = rate
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --fault-rate: {rate:?}")))?;
            let seed: u64 = p.get_parsed("fault-seed", 1)?;
            Ok(FaultPlan::random(mesh, seed, rate))
        }
        (None, None) => Ok(FaultPlan::new()),
    }
}

fn witness_json(witness: &Option<Vec<phastlane_analyze::Channel>>) -> JsonValue {
    match witness {
        None => JsonValue::Null,
        Some(cycle) => JsonValue::Arr(
            cycle
                .iter()
                .map(|c| JsonValue::Str(c.to_string()))
                .collect(),
        ),
    }
}

fn envelope_json(env: &OpticalEnvelope) -> JsonValue {
    JsonValue::Obj(vec![
        ("wdm".into(), JsonValue::Uint(u64::from(env.wdm))),
        ("max_hops".into(), JsonValue::Uint(u64::from(env.max_hops))),
        (
            "crossing_efficiency".into(),
            JsonValue::Num(env.crossing_efficiency),
        ),
        ("droop_factor".into(), JsonValue::Num(env.droop_factor)),
        (
            "effective_hops".into(),
            JsonValue::Uint(u64::from(env.effective_hops)),
        ),
        ("diameter".into(), JsonValue::Uint(u64::from(env.diameter))),
        (
            "min_transit_cycles".into(),
            match env.min_transit_cycles {
                Some(c) => JsonValue::Uint(u64::from(c)),
                None => JsonValue::Null,
            },
        ),
        ("feasible".into(), JsonValue::Bool(env.feasible())),
    ])
}

fn emit(p: &Parsed, human: String, json: JsonValue) -> Result<String, ArgError> {
    let text = if p.flag("json") {
        json.to_string_pretty()
    } else {
        human
    };
    if let Some(path) = p.get("out") {
        std::fs::write(path, &text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        Ok(format!("analysis -> {path}\n"))
    } else {
        Ok(text)
    }
}

fn analyze_ring(p: &Parsed) -> Result<String, ArgError> {
    let len: u16 = p.get_parsed("ring", 8)?;
    if len < 2 {
        return Err(ArgError("--ring needs at least 2 nodes".into()));
    }
    let cdg = Cdg::of_ring_dor(len);
    let witness = cdg.shortest_cycle();
    let mut human = format!(
        "analyze ring: naive DOR on a {len}-node unidirectional torus ring\n\
         cdg: {} channels, {} dependencies\n",
        cdg.active_channels(),
        cdg.edge_count()
    );
    match &witness {
        Some(cycle) => {
            let chain: Vec<String> = cycle.iter().map(|c| c.to_string()).collect();
            human.push_str(&format!(
                "verdict: CYCLIC — deadlock possible\n\
                 minimal witness ({} channels): {}\n",
                cycle.len(),
                chain.join(" -> ")
            ));
        }
        None => human.push_str("verdict: acyclic — deadlock-free\n"),
    }
    let json = JsonValue::Obj(vec![
        ("mode".into(), JsonValue::Str("ring-dor".into())),
        ("ring".into(), JsonValue::Uint(len as u64)),
        ("deadlock_free".into(), JsonValue::Bool(witness.is_none())),
        ("witness".into(), witness_json(&witness)),
    ]);
    emit(p, human, json)
}

fn analyze_network(p: &Parsed) -> Result<String, ArgError> {
    let net = p.get("net").unwrap_or("optical4");
    let mesh = parse_mesh(p)?;
    let plan = parse_plan(p, mesh)?;
    let cdg = Cdg::of_mesh_xy(mesh, &plan);
    let witness = cdg.shortest_cycle();
    let envelope = optical_envelope(net, mesh, &plan).map_err(ArgError)?;
    let residual = residual_connectivity(mesh, &plan);

    let mut human = format!(
        "analyze {net} on {}x{} mesh ({} fault(s) scheduled, worst-case view)\n\
         cdg: {} channels, {} dependencies\n",
        mesh.width(),
        mesh.height(),
        plan.faults().len(),
        cdg.active_channels(),
        cdg.edge_count(),
    );
    match &witness {
        None => human.push_str("deadlock: acyclic CDG — deadlock-free\n"),
        Some(cycle) => {
            let chain: Vec<String> = cycle.iter().map(|c| c.to_string()).collect();
            human.push_str(&format!(
                "deadlock: CYCLIC — minimal witness ({} channels): {}\n\
                 (survivable under Phastlane's drop-and-retry; fatal under \
                 hold-and-wait)\n",
                cycle.len(),
                chain.join(" -> ")
            ));
        }
    }
    match &envelope {
        None => human.push_str("envelope: electrical network, no optical budget\n"),
        Some(env) => {
            human.push_str(&format!(
                "envelope: wdm {}, provisioned {} hops @ eff {:.3}, droop {:.4} \
                 -> effective {} hops",
                env.wdm,
                env.max_hops,
                env.crossing_efficiency,
                env.droop_factor,
                env.effective_hops
            ));
            match env.min_transit_cycles {
                Some(c) => human.push_str(&format!(
                    ", diameter {} -> min transit {} cycle(s)\n",
                    env.diameter, c
                )),
                None => human.push_str(" — OPTICALLY INFEASIBLE\n"),
            }
        }
    }
    let reachable = residual.total_pairs - residual.partitioned.len();
    human.push_str(&format!(
        "connectivity: {reachable}/{} ordered pairs reachable\n",
        residual.total_pairs
    ));
    if !residual.partitioned.is_empty() {
        const SHOW: usize = 8;
        let shown: Vec<String> = residual
            .partitioned
            .iter()
            .take(SHOW)
            .map(|(s, d)| format!("{s}->{d}"))
            .collect();
        human.push_str(&format!(
            "partitioned ({} pair(s), predicted undeliverable): {}{}\n",
            residual.partitioned.len(),
            shown.join(" "),
            if residual.partitioned.len() > SHOW {
                format!(" (+{} more)", residual.partitioned.len() - SHOW)
            } else {
                String::new()
            }
        ));
    }

    let json = JsonValue::Obj(vec![
        ("mode".into(), JsonValue::Str("network".into())),
        ("net".into(), JsonValue::Str(net.to_string())),
        (
            "mesh".into(),
            JsonValue::Str(format!("{}x{}", mesh.width(), mesh.height())),
        ),
        ("faults".into(), JsonValue::Uint(plan.faults().len() as u64)),
        (
            "channels".into(),
            JsonValue::Uint(cdg.active_channels() as u64),
        ),
        (
            "dependencies".into(),
            JsonValue::Uint(cdg.edge_count() as u64),
        ),
        ("deadlock_free".into(), JsonValue::Bool(witness.is_none())),
        ("witness".into(), witness_json(&witness)),
        (
            "envelope".into(),
            match &envelope {
                Some(env) => envelope_json(env),
                None => JsonValue::Null,
            },
        ),
        (
            "total_pairs".into(),
            JsonValue::Uint(residual.total_pairs as u64),
        ),
        (
            "partitioned".into(),
            JsonValue::Arr(
                residual
                    .partitioned
                    .iter()
                    .map(|(s, d)| {
                        JsonValue::Arr(vec![
                            JsonValue::Uint(u64::from(s.0)),
                            JsonValue::Uint(u64::from(d.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    emit(p, human, json)
}

fn analyze_spec(p: &Parsed, path: &str) -> Result<String, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let spec = LabSpec::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let findings = lint_spec(&spec);
    let errors = findings.iter().filter(|f| f.level == Level::Error).count();
    let warnings = findings.len() - errors;
    let json = JsonValue::Obj(vec![
        ("mode".into(), JsonValue::Str("spec".into())),
        ("spec".into(), JsonValue::Str(spec.name.clone())),
        ("jobs".into(), JsonValue::Uint(spec.job_count() as u64)),
        ("errors".into(), JsonValue::Uint(errors as u64)),
        ("warnings".into(), JsonValue::Uint(warnings as u64)),
        (
            "findings".into(),
            JsonValue::Arr(
                findings
                    .iter()
                    .map(|f| {
                        JsonValue::Obj(vec![
                            ("level".into(), JsonValue::Str(f.level.to_string())),
                            (
                                "cell".into(),
                                match &f.cell {
                                    Some(c) => JsonValue::Str(c.clone()),
                                    None => JsonValue::Null,
                                },
                            ),
                            ("message".into(), JsonValue::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut human = format!(
        "analyze spec {path}: {} job(s), {errors} error(s), {warnings} warning(s)\n",
        spec.job_count()
    );
    for f in &findings {
        human.push_str(&format!("  {f}\n"));
    }
    let out = emit(p, human, json)?;
    if errors > 0 {
        return Err(ArgError(format!(
            "{out}spec {path} is statically doomed ({errors} error(s))"
        )));
    }
    Ok(out)
}

fn analyze_src(p: &Parsed) -> Result<String, ArgError> {
    let root = p.get("root").unwrap_or(".");
    let findings = srclint::scan_workspace(Path::new(root))
        .map_err(|e| ArgError(format!("cannot scan {root}: {e}")))?;
    let allow_text = match p.get("allow") {
        None => String::new(),
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?,
    };
    let allow = srclint::parse_allowlist(&allow_text).map_err(ArgError)?;
    if let Some(path) = p.get("emit-allow") {
        let out = srclint::emit_allow(&findings, &allow_text);
        std::fs::write(path, &out).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        return Ok(format!(
            "srclint: {} finding(s) -> allowlist {path}\n",
            findings.len()
        ));
    }
    let verdict = srclint::apply_allowlist(&findings, &allow);
    if verdict.clean() {
        return Ok(format!(
            "srclint: clean ({} finding(s), all allowlisted)\n",
            findings.len()
        ));
    }
    let mut msg = format!(
        "srclint: {} violation(s), {} stale allowlist entr(ies)\n",
        verdict.violations.len(),
        verdict.stale.len()
    );
    for v in &verdict.violations {
        msg.push_str(&format!("  {v}\n"));
    }
    for s in &verdict.stale {
        msg.push_str(&format!("  stale allowlist entry: {s}\n"));
    }
    Err(ArgError(msg))
}

/// `phastlane analyze`.
///
/// # Errors
///
/// Argument/IO errors; `--spec` errors on a statically doomed matrix;
/// `--src` errors on lint violations or stale allowlist entries.
pub fn cmd_analyze(p: &Parsed) -> Result<String, ArgError> {
    if p.flag("src") {
        analyze_src(p)
    } else if let Some(path) = p.get("spec") {
        let path = path.to_string();
        analyze_spec(p, &path)
    } else if p.get("ring").is_some() {
        analyze_ring(p)
    } else {
        analyze_network(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> Parsed {
        Parsed::parse(words.iter().map(|s| s.to_string())).expect("parses")
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("phastlane-analyze-cmd-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn fault_free_paper_mesh_is_clean() {
        let out = cmd_analyze(&parsed(&["analyze"])).expect("analyzes");
        assert!(out.contains("deadlock-free"), "{out}");
        assert!(out.contains("4032/4032 ordered pairs reachable"), "{out}");
        assert!(out.contains("effective 4 hops"), "{out}");
    }

    #[test]
    fn ring_mode_produces_a_concrete_witness_cycle() {
        let out = cmd_analyze(&parsed(&["analyze", "--ring", "4"])).expect("analyzes");
        assert!(out.contains("CYCLIC"), "{out}");
        assert!(out.contains("witness (4 channels)"), "{out}");
        assert!(out.contains("n0->E"), "{out}");
        // And as machine-readable JSON.
        let js = cmd_analyze(&parsed(&["analyze", "--ring", "4", "--json"])).expect("json");
        assert!(js.contains("\"deadlock_free\": false"), "{js}");
        assert!(js.contains("\"n0->E\""), "{js}");
    }

    #[test]
    fn heavy_faults_surface_partitions_and_droop() {
        let out = cmd_analyze(&parsed(&[
            "analyze",
            "--mesh",
            "4x4",
            "--fault-rate",
            "1.0",
            "--fault-seed",
            "7",
        ]))
        .expect("analyzes");
        assert!(out.contains("partitioned"), "{out}");
        assert!(out.contains("predicted undeliverable"), "{out}");
    }

    #[test]
    fn spec_mode_gates_doomed_specs() {
        let dir = scratch("spec");
        let good = dir.join("good.lab");
        std::fs::write(&good, "mesh 4x4\nnets optical4\npatterns transpose\n").unwrap();
        let out = cmd_analyze(&parsed(&["analyze", "--spec", good.to_str().unwrap()]))
            .expect("clean spec passes");
        assert!(out.contains("0 error(s)"), "{out}");
        let doomed = dir.join("doomed.lab");
        std::fs::write(
            &doomed,
            "mesh 4x4\nseed 7\nnets optical4\npatterns transpose\nintensities 1.0\n",
        )
        .unwrap();
        let err = cmd_analyze(&parsed(&["analyze", "--spec", doomed.to_str().unwrap()]))
            .expect_err("doomed spec fails");
        assert!(err.to_string().contains("statically doomed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn src_mode_round_trips_through_its_own_allowlist() {
        let dir = scratch("src");
        // A miniature workspace with one hazard.
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        )
        .unwrap();
        let root = dir.to_str().unwrap();
        // Unallowlisted: a violation, non-zero exit.
        let err = cmd_analyze(&parsed(&["analyze", "--src", "--root", root]))
            .expect_err("violation fails");
        assert!(err.to_string().contains("wall-clock"), "{err}");
        // Emit the allowlist, then the same scan passes.
        let allow = dir.join("allow.txt");
        cmd_analyze(&parsed(&[
            "analyze",
            "--src",
            "--root",
            root,
            "--emit-allow",
            allow.to_str().unwrap(),
        ]))
        .expect("emits");
        let out = cmd_analyze(&parsed(&[
            "analyze",
            "--src",
            "--root",
            root,
            "--allow",
            allow.to_str().unwrap(),
        ]))
        .expect("allowlisted scan passes");
        assert!(out.contains("clean"), "{out}");
        // A stale entry (hazard removed, entry kept) fails the other way.
        std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").unwrap();
        let err = cmd_analyze(&parsed(&[
            "analyze",
            "--src",
            "--root",
            root,
            "--allow",
            allow.to_str().unwrap(),
        ]))
        .expect_err("stale entry fails");
        assert!(err.to_string().contains("stale"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_writes_the_report_to_a_file() {
        let dir = scratch("out");
        let path = dir.join("cdg.json");
        let out = cmd_analyze(&parsed(&[
            "analyze",
            "--json",
            "--out",
            path.to_str().unwrap(),
        ]))
        .expect("writes");
        assert!(out.contains("analysis ->"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"deadlock_free\": true"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
