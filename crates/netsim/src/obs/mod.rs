//! Observability: structured event traces, time-series metrics, and
//! run reports — zero-cost when disabled.
//!
//! The paper's congestion story (Figs. 9–11) lives in *where* and *when*
//! packets fall back to electrical buffers, overflow, and retransmit.
//! End-of-run aggregates cannot show that, so this module provides three
//! progressively heavier views:
//!
//! 1. [`event`] — a per-event structured trace ([`SimEvent`]) collected
//!    into a [`TraceBuffer`] (unbounded or ring mode) with severity
//!    filtering;
//! 2. [`metrics`] — interval-sampled time series ([`MetricsSeries`]):
//!    offered/accepted/delivered load, latency percentiles, buffer
//!    occupancy, drops and retries per sample window;
//! 3. [`report`] — a structured run report ([`RunReport`]) with a
//!    simulator performance profile ([`PerfProfile`]), exportable as
//!    JSON or CSV through the dependency-free [`json`] serializer.
//!
//! Live telemetry adds three more views on top:
//!
//! 4. [`phase`] — a [`PhaseProfiler`] attributing hot-loop time and
//!    work to the six per-cycle phases (route / arbitrate / traverse /
//!    eject / fault / drain), with batched wall-clock sampling, feeding
//!    a [`PhaseBreakdown`] into [`PerfProfile`] and BENCH points;
//! 5. [`flight`] — a packet [`FlightRecorder`] capturing per-packet
//!    journeys (seeded sample + every Undeliverable packet) for
//!    post-mortem diagnosis, riding the same [`Obs::emit`] path as the
//!    trace buffer;
//! 6. [`sink`] — a bounded, backpressure-aware NDJSON [`EventSink`] the
//!    lab worker pool streams per-job lifecycle events through;
//! 7. [`fanout`] — a poll-driven broadcast hub ([`EventFanout`])
//!    multiplying one sink's NDJSON stream to any number of subscribers
//!    (each with its own bounded queue and drop accounting), the
//!    junction the `phastlane-serve` event endpoints hang off.
//!
//! # Cost model
//!
//! Networks own an [`Obs`] handle and a [`PhaseProfiler`] that are off
//! by default. Every emit/mark site compiles to one branch on an
//! `Option` discriminant when disabled; no event values are constructed
//! and no clock is read. Metric sampling lives in the harness, not the
//! per-cycle network loops, and only runs when a collector is attached.
//! The profiler amortizes `Instant::now()` by timing only every N-th
//! cycle (see [`phase`]); the flight recorder and trace buffer bound
//! memory via eviction caps.

pub mod event;
pub mod fanout;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod sink;

pub use event::{EventKind, Obs, Severity, SimEvent, TraceBuffer};
pub use fanout::{EventFanout, FanoutPoll, FanoutSubscriber};
pub use flight::{FlightRecorder, FlightStep, Journey};
pub use metrics::{CycleTotals, MetricSample, MetricsCollector, MetricsSeries};
pub use phase::{Phase, PhaseBreakdown, PhaseProfiler};
pub use report::{PerfProfile, RunReport};
pub use sink::{EventSink, SinkReport, EVENT_SCHEMA_VERSION};
