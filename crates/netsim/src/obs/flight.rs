//! Packet flight recorder: per-packet journey capture for post-mortem
//! diagnosis.
//!
//! A trace buffer answers "what happened on the network"; the flight
//! recorder answers "what happened to *this packet*". It rides the same
//! [`Obs::emit`](crate::obs::Obs::emit) path as the trace buffer and
//! groups events by packet id into journeys (hop, port, cycle, and the
//! retry/ECC/detour cause encoded in the event kind).
//!
//! Recording every journey of a long run is unaffordable, so capture is
//! bounded two ways:
//!
//! * **seeded sampling** — a packet is *pinned* (always dumped) when
//!   `mix(seed, packet_id) % sample_interval == 0`. The hash is a pure
//!   function of the seed and the id, so the same seed always pins the
//!   same packets and the dump is byte-identical across runs;
//! * **every Undeliverable packet** — a journey that ends in the
//!   terminal [`EventKind::Undeliverable`] outcome is pinned
//!   retroactively: all packets keep a pending journey so the full
//!   history is available when the retry cap fires.
//!
//! Pending journeys are capped at `max_pending` (oldest non-pinned
//! evicted first) and each journey at `max_steps` events; evictions and
//! truncations are counted in the dump header so a bounded capture never
//! masquerades as a complete one.

use crate::obs::event::{direction_name, EventKind, SimEvent};
use crate::obs::json::JsonValue;
use std::collections::HashMap;
use std::collections::VecDeque;

/// One recorded event of a packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightStep {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// What happened (hop, fallback, retry, ECC, detour, ...).
    pub kind: EventKind,
    /// Router/node involved.
    pub node: u16,
    /// Outgoing or entry port, when the event concerns a link.
    pub port: Option<crate::geometry::Direction>,
}

/// One packet's recorded journey.
#[derive(Debug, Clone, Default)]
pub struct Journey {
    /// Packet id.
    pub packet: u64,
    /// Pinned by the seeded sampler (as opposed to by an Undeliverable
    /// outcome).
    pub sampled: bool,
    /// The journey ended in a terminal Undeliverable event.
    pub undeliverable: bool,
    /// Deliveries observed (can exceed 1 for multicast packets).
    pub deliveries: u32,
    /// Steps dropped once the journey hit the per-journey cap.
    pub truncated: u64,
    /// The recorded events, oldest first.
    pub steps: Vec<FlightStep>,
}

impl Journey {
    /// JSON object for one journey (stable key order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("packet".to_string(), JsonValue::Uint(self.packet)),
            ("sampled".to_string(), JsonValue::Bool(self.sampled)),
            (
                "undeliverable".to_string(),
                JsonValue::Bool(self.undeliverable),
            ),
            (
                "deliveries".to_string(),
                JsonValue::Uint(u64::from(self.deliveries)),
            ),
            ("truncated".to_string(), JsonValue::Uint(self.truncated)),
            (
                "steps".to_string(),
                JsonValue::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            let mut obj = vec![
                                ("cycle".to_string(), JsonValue::Uint(s.cycle)),
                                (
                                    "event".to_string(),
                                    JsonValue::Str(s.kind.name().to_string()),
                                ),
                                ("node".to_string(), JsonValue::Uint(u64::from(s.node))),
                            ];
                            if let Some(p) = s.port {
                                obj.push((
                                    "port".to_string(),
                                    JsonValue::Str(direction_name(p).to_string()),
                                ));
                            }
                            JsonValue::Obj(obj)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// splitmix64 finalizer over `seed ^ f(id)` — the sampling decision is a
/// pure function of (seed, packet id), independent of event order. The
/// shared [`crate::rng::mix64`] stream is pinned by its own unit tests,
/// so committed flight dumps keep their sampling forever.
fn mix(seed: u64, id: u64) -> u64 {
    crate::rng::mix64(seed, id)
}

/// The per-network journey recorder. Attach via
/// [`Network::set_flight_recorder`](crate::network::Network::set_flight_recorder),
/// detach with `take_flight_recorder`, and dump with
/// [`to_json`](FlightRecorder::to_json).
#[derive(Debug)]
pub struct FlightRecorder {
    seed: u64,
    sample_interval: u64,
    max_pending: usize,
    max_steps: usize,
    journeys: HashMap<u64, Journey>,
    /// Packet ids in first-seen order — the eviction queue. May contain
    /// ids already evicted (lazily skipped).
    order: VecDeque<u64>,
    packets_seen: u64,
    evicted: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Default cap on concurrently-pending journeys.
    pub const DEFAULT_MAX_PENDING: usize = 8192;
    /// Default cap on recorded steps per journey.
    pub const DEFAULT_MAX_STEPS: usize = 256;

    /// A recorder pinning roughly one in `sample_interval` packets
    /// (clamped to ≥ 1; 1 = pin every packet), chosen by a pure hash of
    /// `seed` and the packet id.
    pub fn new(seed: u64, sample_interval: u64) -> Self {
        FlightRecorder {
            seed,
            sample_interval: sample_interval.max(1),
            max_pending: Self::DEFAULT_MAX_PENDING,
            max_steps: Self::DEFAULT_MAX_STEPS,
            journeys: HashMap::new(),
            order: VecDeque::new(),
            packets_seen: 0,
            evicted: 0,
            dropped: 0,
        }
    }

    /// Overrides the pending-journey and per-journey-step caps (both
    /// clamped to ≥ 1).
    #[must_use]
    pub fn with_caps(mut self, max_pending: usize, max_steps: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self.max_steps = max_steps.max(1);
        self
    }

    /// Whether the seeded sampler pins this packet id.
    pub fn samples(&self, packet: u64) -> bool {
        mix(self.seed, packet).is_multiple_of(self.sample_interval)
    }

    /// Feeds one simulation event to the recorder. Events without a
    /// packet id are ignored; everything else lands in that packet's
    /// journey.
    pub fn observe(&mut self, ev: &SimEvent) {
        let Some(pid) = ev.packet else { return };
        let id = pid.0;
        if !self.journeys.contains_key(&id) {
            self.packets_seen += 1;
            if self.journeys.len() >= self.max_pending && !self.evict_one() {
                // Every pending journey is pinned; dropping the new one
                // keeps memory bounded (counted, never silent).
                self.dropped += 1;
                return;
            }
            self.journeys.insert(
                id,
                Journey {
                    packet: id,
                    sampled: self.samples(id),
                    ..Journey::default()
                },
            );
            self.order.push_back(id);
        }
        let journey = self.journeys.get_mut(&id).expect("just ensured");
        match ev.kind {
            EventKind::Undeliverable => journey.undeliverable = true,
            EventKind::Eject => journey.deliveries += 1,
            _ => {}
        }
        if journey.steps.len() >= self.max_steps {
            journey.truncated += 1;
        } else {
            journey.steps.push(FlightStep {
                cycle: ev.cycle,
                kind: ev.kind,
                node: ev.node.0,
                port: ev.port,
            });
        }
    }

    /// Evicts the oldest non-pinned pending journey. False if every
    /// pending journey is pinned.
    fn evict_one(&mut self) -> bool {
        let mut kept = Vec::new();
        let mut evicted = false;
        while let Some(id) = self.order.pop_front() {
            match self.journeys.get(&id) {
                // Stale queue entry for an already-evicted id.
                None => continue,
                Some(j) if j.sampled || j.undeliverable => kept.push(id),
                Some(_) => {
                    self.journeys.remove(&id);
                    self.evicted += 1;
                    evicted = true;
                    break;
                }
            }
        }
        // Pinned ids we skipped stay at the front, preserving order.
        for id in kept.into_iter().rev() {
            self.order.push_front(id);
        }
        evicted
    }

    /// Number of journeys that will be dumped (pinned by sampling or by
    /// an Undeliverable outcome).
    pub fn pinned(&self) -> usize {
        self.journeys
            .values()
            .filter(|j| j.sampled || j.undeliverable)
            .count()
    }

    /// The full dump as one JSON document. Journeys are sorted by packet
    /// id and only pinned ones are emitted, so the dump is a pure
    /// function of the recorder's inputs: same seed + same run → an
    /// identical document.
    pub fn to_json(&self) -> JsonValue {
        let mut pinned: Vec<&Journey> = self
            .journeys
            .values()
            .filter(|j| j.sampled || j.undeliverable)
            .collect();
        pinned.sort_by_key(|j| j.packet);
        JsonValue::Obj(vec![
            ("seed".to_string(), JsonValue::Uint(self.seed)),
            (
                "sample_interval".to_string(),
                JsonValue::Uint(self.sample_interval),
            ),
            (
                "packets_seen".to_string(),
                JsonValue::Uint(self.packets_seen),
            ),
            (
                "journeys_evicted".to_string(),
                JsonValue::Uint(self.evicted),
            ),
            (
                "journeys_dropped".to_string(),
                JsonValue::Uint(self.dropped),
            ),
            (
                "journeys".to_string(),
                JsonValue::Arr(pinned.into_iter().map(Journey::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Direction, NodeId};
    use crate::packet::PacketId;

    fn ev(cycle: u64, kind: EventKind, packet: u64) -> SimEvent {
        SimEvent {
            cycle,
            kind,
            node: NodeId(2),
            port: Some(Direction::West),
            packet: Some(PacketId(packet)),
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_id() {
        let a = FlightRecorder::new(7, 4);
        let b = FlightRecorder::new(7, 4);
        let c = FlightRecorder::new(8, 4);
        let picks = |r: &FlightRecorder| (0..256).filter(|&i| r.samples(i)).collect::<Vec<_>>();
        assert_eq!(picks(&a), picks(&b), "same seed, same picks");
        assert_ne!(picks(&a), picks(&c), "different seed, different picks");
        assert!(!picks(&a).is_empty(), "interval 4 over 256 ids picks some");
    }

    #[test]
    fn undeliverable_journeys_are_pinned() {
        // Interval so large nothing gets sampled; only the terminal
        // outcome pins.
        let mut r = FlightRecorder::new(1, u64::MAX);
        r.observe(&ev(0, EventKind::Inject, 5));
        r.observe(&ev(1, EventKind::OpticalTransit, 5));
        r.observe(&ev(2, EventKind::Undeliverable, 5));
        r.observe(&ev(0, EventKind::Inject, 6));
        r.observe(&ev(3, EventKind::Eject, 6));
        assert_eq!(r.pinned(), 1);
        let dump = r.to_json();
        let journeys = dump.get("journeys").unwrap().as_arr().unwrap();
        assert_eq!(journeys.len(), 1);
        assert_eq!(journeys[0].get("packet").unwrap().as_u64(), Some(5));
        assert_eq!(
            journeys[0].get("steps").unwrap().as_arr().unwrap().len(),
            3,
            "full history retained from injection"
        );
    }

    #[test]
    fn eviction_prefers_oldest_non_pinned_and_is_counted() {
        let mut r = FlightRecorder::new(1, u64::MAX).with_caps(2, 16);
        r.observe(&ev(0, EventKind::Inject, 1));
        r.observe(&ev(1, EventKind::Undeliverable, 1)); // pinned
        r.observe(&ev(2, EventKind::Inject, 2)); // evictable
        r.observe(&ev(3, EventKind::Inject, 3)); // forces eviction of 2
        let dump = r.to_json();
        assert_eq!(dump.get("journeys_evicted").unwrap().as_u64(), Some(1));
        assert!(r.journeys.contains_key(&1), "pinned survives");
        assert!(r.journeys.contains_key(&3), "newest pending kept");
        assert!(!r.journeys.contains_key(&2), "oldest non-pinned evicted");
    }

    #[test]
    fn all_pinned_drops_new_journeys() {
        let mut r = FlightRecorder::new(0, 1).with_caps(2, 16); // everything sampled
        r.observe(&ev(0, EventKind::Inject, 1));
        r.observe(&ev(0, EventKind::Inject, 2));
        r.observe(&ev(0, EventKind::Inject, 3)); // no room, all pinned
        assert_eq!(
            r.to_json().get("journeys_dropped").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(r.pinned(), 2);
    }

    #[test]
    fn step_cap_truncates_and_counts() {
        let mut r = FlightRecorder::new(0, 1).with_caps(8, 2);
        for c in 0..5 {
            r.observe(&ev(c, EventKind::OpticalTransit, 9));
        }
        let j = &r.journeys[&9];
        assert_eq!(j.steps.len(), 2);
        assert_eq!(j.truncated, 3);
    }

    #[test]
    fn dump_is_deterministic_for_the_same_inputs() {
        let run = || {
            let mut r = FlightRecorder::new(42, 2);
            for p in 0..50u64 {
                r.observe(&ev(p, EventKind::Inject, p));
                r.observe(&ev(p + 1, EventKind::OpticalTransit, p));
                if p % 7 == 0 {
                    r.observe(&ev(p + 2, EventKind::Undeliverable, p));
                } else {
                    r.observe(&ev(p + 2, EventKind::Eject, p));
                }
            }
            r.to_json().to_string_pretty()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_without_a_packet_are_ignored() {
        let mut r = FlightRecorder::new(0, 1);
        r.observe(&SimEvent {
            cycle: 0,
            kind: EventKind::FaultInjected,
            node: NodeId(0),
            port: None,
            packet: None,
        });
        assert_eq!(r.packets_seen, 0);
    }
}
