//! Micro-benchmarks of the per-launch primitives: plan rebuild, router
//! queue churn, and XY routing. Used to attribute hot-path cost when a
//! sampling profiler is unavailable.
//!
//! Run with: `cargo run --release --example micro_bench`

use phastlane_repro::netsim::routing::xy_route_into;
use phastlane_repro::netsim::{Mesh, NodeId};
use phastlane_repro::optical::plan::Plan;
use std::time::Instant;

fn main() {
    let mesh = Mesh::PAPER;
    let iters = 1_000_000u64;

    // Plan rebuild for a 4-hop unicast segment (the common case).
    let mut plan = Plan::build(mesh, NodeId(0), &[NodeId(4)], false, 4);
    let mut dirs = Vec::new();
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..iters {
        let from = NodeId((i % 60) as u16);
        let to = NodeId(((i % 60) + 4) as u16);
        plan.rebuild_with(&mut dirs, mesh, from, &[to], false, 4);
        acc += plan.steps().len();
    }
    let d = t.elapsed();
    println!(
        "rebuild_with 4-hop: {:.1} ns/call (acc {})",
        d.as_nanos() as f64 / iters as f64,
        acc
    );

    // Raw XY routing for the same span.
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..iters {
        let from = NodeId((i % 60) as u16);
        let to = NodeId(((i % 60) + 4) as u16);
        dirs.clear();
        xy_route_into(mesh, from, to, &mut dirs);
        acc += dirs.len();
    }
    let d = t.elapsed();
    println!(
        "xy_route_into 4-hop: {:.1} ns/call (acc {})",
        d.as_nanos() as f64 / iters as f64,
        acc
    );
}
