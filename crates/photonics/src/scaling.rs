//! Technology-scaling models for the optical transmit and receive chains.
//!
//! The paper (§3.1, Figure 4) starts from the Kirman et al. component-delay
//! analysis, which scaled each optical transmit and receive component from
//! 45 nm to 22 nm, and extrapolates to 16 nm by fitting **logarithmic**,
//! **linear**, and **exponential** functions to that data. The three fits
//! become the *optimistic*, *average*, and *pessimistic* scaling scenarios:
//! the logarithmic fit keeps improving fastest at small feature sizes
//! (optimistic), the exponential fit flattens out (pessimistic).
//!
//! The Kirman data is not published in tabular form, so this module carries
//! anchor points at 45/32/22 nm chosen such that the three fits land on the
//! endpoints the paper states for 16 nm: transmit 8.0–19.4 ps and receive
//! 1.8–3.7 ps (see `DESIGN.md`, substitution #2).

use crate::units::{Picoseconds, TechNode};
use std::fmt;

/// One (technology node, delay) observation used for curve fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchor {
    /// Technology node of the observation.
    pub node: TechNode,
    /// Aggregate chain delay at that node.
    pub delay: Picoseconds,
}

/// Anchor points for the aggregate *transmit* chain (serialization, driver,
/// modulator), in the spirit of Kirman et al. scaled data.
pub const TRANSMIT_ANCHORS: [Anchor; 3] = [
    Anchor {
        node: TechNode::NM45,
        delay: Picoseconds(55.0),
    },
    Anchor {
        node: TechNode::NM32,
        delay: Picoseconds(36.0),
    },
    Anchor {
        node: TechNode::NM22,
        delay: Picoseconds(24.0),
    },
];

/// Anchor points for the aggregate *receive* chain (photodetector,
/// transimpedance amplifier, deserialization).
pub const RECEIVE_ANCHORS: [Anchor; 3] = [
    Anchor {
        node: TechNode::NM45,
        delay: Picoseconds(10.0),
    },
    Anchor {
        node: TechNode::NM32,
        delay: Picoseconds(6.7),
    },
    Anchor {
        node: TechNode::NM22,
        delay: Picoseconds(4.6),
    },
];

/// The three technology-scaling scenarios of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scaling {
    /// Logarithmic fit: components keep improving quickly (8 hops/cycle).
    Optimistic,
    /// Linear fit (5 hops/cycle).
    Average,
    /// Exponential fit: improvement flattens out (4 hops/cycle).
    Pessimistic,
}

impl Scaling {
    /// All scenarios, in the order the paper's figures list them.
    pub const ALL: [Scaling; 3] = [Scaling::Optimistic, Scaling::Average, Scaling::Pessimistic];
}

impl fmt::Display for Scaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scaling::Optimistic => "optimistic",
            Scaling::Average => "average",
            Scaling::Pessimistic => "pessimistic",
        };
        f.write_str(s)
    }
}

/// A fitted one-dimensional model `delay = f(feature size)`.
///
/// The three variants mirror the paper's three fit families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FittedCurve {
    /// `d = a + b * ln(x)`
    Logarithmic {
        /// Intercept.
        a: f64,
        /// Slope against `ln(x)`.
        b: f64,
    },
    /// `d = a + b * x`
    Linear {
        /// Intercept.
        a: f64,
        /// Slope.
        b: f64,
    },
    /// `d = a * e^(b * x)` (fitted in log space)
    Exponential {
        /// Scale factor.
        a: f64,
        /// Exponent rate.
        b: f64,
    },
}

impl FittedCurve {
    /// Least-squares fit of the chosen family to the anchor data.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are supplied or all anchors share
    /// the same node (the fit would be degenerate).
    pub fn fit(family: Scaling, anchors: &[Anchor]) -> FittedCurve {
        assert!(anchors.len() >= 2, "need at least two anchors to fit");
        let xs: Vec<f64> = anchors
            .iter()
            .map(|a| match family {
                Scaling::Optimistic => a.node.nanometers().ln(),
                Scaling::Average | Scaling::Pessimistic => a.node.nanometers(),
            })
            .collect();
        let ys: Vec<f64> = anchors
            .iter()
            .map(|a| match family {
                Scaling::Pessimistic => a.delay.value().ln(),
                _ => a.delay.value(),
            })
            .collect();
        let (intercept, slope) = least_squares(&xs, &ys);
        match family {
            Scaling::Optimistic => FittedCurve::Logarithmic {
                a: intercept,
                b: slope,
            },
            Scaling::Average => FittedCurve::Linear {
                a: intercept,
                b: slope,
            },
            Scaling::Pessimistic => FittedCurve::Exponential {
                a: intercept.exp(),
                b: slope,
            },
        }
    }

    /// Evaluates the fitted curve at a technology node.
    pub fn eval(&self, node: TechNode) -> Picoseconds {
        let x = node.nanometers();
        let d = match *self {
            FittedCurve::Logarithmic { a, b } => a + b * x.ln(),
            FittedCurve::Linear { a, b } => a + b * x,
            FittedCurve::Exponential { a, b } => a * (b * x).exp(),
        };
        Picoseconds(d)
    }
}

/// Ordinary least squares for `y = intercept + slope * x`.
///
/// # Panics
///
/// Panics if the x values have zero variance.
fn least_squares(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "anchor nodes must not all be identical");
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    (mean_y - slope * mean_x, slope)
}

/// Transmit and receive delays at a node under one scaling scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainDelays {
    /// Aggregate transmit-chain delay (drive + modulate).
    pub transmit: Picoseconds,
    /// Aggregate receive-chain delay (detect + amplify).
    pub receive: Picoseconds,
}

/// Computes the transmit/receive chain delays for `scenario` at `node`
/// by fitting the appropriate curve family to the anchor data.
///
/// This is the data behind Figure 4 of the paper.
pub fn chain_delays(scenario: Scaling, node: TechNode) -> ChainDelays {
    let tx = FittedCurve::fit(scenario, &TRANSMIT_ANCHORS).eval(node);
    let rx = FittedCurve::fit(scenario, &RECEIVE_ANCHORS).eval(node);
    ChainDelays {
        transmit: tx,
        receive: rx,
    }
}

/// Returns the Figure 4 series: delays for every scenario at each node from
/// 45 nm down to 16 nm. The result is a list of rows
/// `(node, [(scenario, delays); 3])`.
pub fn figure4_series() -> Vec<(TechNode, [(Scaling, ChainDelays); 3])> {
    [
        TechNode::NM45,
        TechNode::NM32,
        TechNode::NM22,
        TechNode::NM16,
    ]
    .iter()
    .map(|&node| {
        let row = [
            (Scaling::Optimistic, chain_delays(Scaling::Optimistic, node)),
            (Scaling::Average, chain_delays(Scaling::Average, node)),
            (
                Scaling::Pessimistic,
                chain_delays(Scaling::Pessimistic, node),
            ),
        ];
        (node, row)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, tol_frac: f64) -> bool {
        (actual - expected).abs() <= expected.abs() * tol_frac
    }

    #[test]
    fn fits_pass_near_anchor_points() {
        for scenario in Scaling::ALL {
            let fit = FittedCurve::fit(scenario, &TRANSMIT_ANCHORS);
            for anchor in &TRANSMIT_ANCHORS {
                let predicted = fit.eval(anchor.node).value();
                // Two-parameter fit over three points: allow modest residual.
                assert!(
                    close(predicted, anchor.delay.value(), 0.10),
                    "{scenario} fit at {} gave {predicted}, anchor {}",
                    anchor.node,
                    anchor.delay
                );
            }
        }
    }

    #[test]
    fn transmit_endpoints_match_paper_range() {
        // Paper: at 16 nm, transmit delays range 8.0-19.4 ps.
        let opt = chain_delays(Scaling::Optimistic, TechNode::NM16)
            .transmit
            .value();
        let pes = chain_delays(Scaling::Pessimistic, TechNode::NM16)
            .transmit
            .value();
        assert!(close(opt, 8.0, 0.15), "optimistic transmit {opt} != ~8.0");
        assert!(
            close(pes, 19.4, 0.15),
            "pessimistic transmit {pes} != ~19.4"
        );
    }

    #[test]
    fn receive_endpoints_match_paper_range() {
        // Paper: at 16 nm, receive delays range 1.8-3.7 ps.
        let opt = chain_delays(Scaling::Optimistic, TechNode::NM16)
            .receive
            .value();
        let pes = chain_delays(Scaling::Pessimistic, TechNode::NM16)
            .receive
            .value();
        assert!(close(opt, 1.8, 0.15), "optimistic receive {opt} != ~1.8");
        assert!(close(pes, 3.7, 0.15), "pessimistic receive {pes} != ~3.7");
    }

    #[test]
    fn average_sits_between_extremes() {
        let d16 = |s| chain_delays(s, TechNode::NM16);
        let (o, a, p) = (
            d16(Scaling::Optimistic),
            d16(Scaling::Average),
            d16(Scaling::Pessimistic),
        );
        assert!(o.transmit < a.transmit && a.transmit < p.transmit);
        assert!(o.receive < a.receive && a.receive < p.receive);
    }

    #[test]
    fn scenarios_agree_on_measured_range() {
        // Inside the measured 22-45 nm range, the three fits should be close
        // to one another (they only diverge when extrapolating).
        for &node in &[TechNode::NM45, TechNode::NM32, TechNode::NM22] {
            let o = chain_delays(Scaling::Optimistic, node).transmit.value();
            let p = chain_delays(Scaling::Pessimistic, node).transmit.value();
            assert!(
                (o - p).abs() / o < 0.15,
                "fits diverge too much at {node}: {o} vs {p}"
            );
        }
    }

    #[test]
    fn delays_shrink_with_technology() {
        for scenario in Scaling::ALL {
            let d45 = chain_delays(scenario, TechNode::NM45);
            let d16 = chain_delays(scenario, TechNode::NM16);
            assert!(d16.transmit < d45.transmit);
            assert!(d16.receive < d45.receive);
        }
    }

    #[test]
    fn figure4_has_four_nodes() {
        let series = figure4_series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].0, TechNode::NM45);
        assert_eq!(series[3].0, TechNode::NM16);
    }

    #[test]
    #[should_panic(expected = "at least two anchors")]
    fn fit_rejects_single_anchor() {
        let _ = FittedCurve::fit(Scaling::Average, &TRANSMIT_ANCHORS[..1]);
    }
}
