//! A 64-core cache-coherent workload: generate a SPLASH2-style coherence
//! trace and replay it on both Phastlane and the electrical baseline,
//! reporting network speedup and power — a miniature of Figures 10/11.
//!
//! Run with: `cargo run --release --example coherent_multicore [benchmark]`

use phastlane_repro::electrical::{ElectricalConfig, ElectricalNetwork};
use phastlane_repro::netsim::harness::{run_trace, TraceOptions};
use phastlane_repro::netsim::{Mesh, Network};
use phastlane_repro::optical::{PhastlaneConfig, PhastlaneNetwork};
use phastlane_repro::traffic::coherence::{generate_trace, summarize};
use phastlane_repro::traffic::splash2;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FFT".to_string());
    let mut profile = splash2::benchmark(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}; see Table 3"));
    // Trim so the example runs in a couple of seconds.
    profile.misses_per_core = profile.misses_per_core.min(40);

    let trace = generate_trace(Mesh::PAPER, &profile);
    let mix = summarize(&trace);
    println!("benchmark {}: {} messages", profile.name, trace.len());
    println!(
        "  {} broadcast requests, {} responses, {} writebacks, {} barrier msgs",
        mix.requests, mix.responses, mix.writebacks, mix.barrier_msgs
    );

    let mut optical = PhastlaneNetwork::new(PhastlaneConfig::optical4());
    let mut electrical = ElectricalNetwork::new(ElectricalConfig::electrical3());

    let o = run_trace(&mut optical, &trace, TraceOptions::default());
    let e = run_trace(&mut electrical, &trace, TraceOptions::default());

    println!(
        "\nOptical4:    completed in {} cycles ({} drops, {} retransmits)",
        o.completion_cycle,
        optical.stats().dropped,
        optical.stats().retransmitted
    );
    println!("Electrical3: completed in {} cycles", e.completion_cycle);
    println!(
        "network speedup: {:.2}x",
        e.completion_cycle as f64 / o.completion_cycle as f64
    );

    let o_mw = o.energy.average_power_mw(o.completion_cycle, 4.0);
    let e_mw = e.energy.average_power_mw(e.completion_cycle, 4.0);
    println!(
        "network power: optical {:.0} mW vs electrical {:.0} mW ({:.0}% less)",
        o_mw,
        e_mw,
        100.0 * (1.0 - o_mw / e_mw)
    );
}
