//! Run supervision primitives: cooperative cancellation, cycle/wall
//! budgets, and livelock detection for the hot step loops.
//!
//! The lab scheduler (and, later, a serving layer) must be able to bound
//! a misbehaving job without killing the process: a job that spins
//! forever under a pathological fault plan, or one that exceeds its
//! cycle allowance, should *finish* with a timeout verdict instead of
//! hanging a worker thread. The [`Watchdog`] is that bound. It is
//! deliberately cheap: when a drive has no watchdog the per-cycle cost
//! is a single `Option` branch, and when it has one the common path is
//! two integer compares — the atomic cancellation flag and the
//! wall-clock read are gated to once every [`Watchdog::GATE`] cycles,
//! the same batched-`Instant` trick the phase profiler uses.
//!
//! Cycle-budget and livelock verdicts fire at *cycle-deterministic*
//! points, so a report containing them is still byte-identical across
//! worker counts, batch sizes, and re-runs. Wall-clock and cancellation
//! verdicts are inherently machine-dependent; they exist as safety
//! valves, not as reproducible measurements.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A clonable cancellation flag shared between a supervisor and the
/// drives it guards. Cancelling is sticky and idempotent.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation of every drive holding a clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a watchdog stopped a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Interrupt {
    /// The shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The run reached its cycle budget.
    CycleBudget {
        /// The configured budget, in cycles.
        budget: u64,
    },
    /// Work was pending but nothing made progress for a full window.
    Livelock {
        /// The configured no-progress window, in cycles.
        window: u64,
        /// The (relative) cycle at which the verdict fired.
        cycle: u64,
    },
    /// The run exceeded its wall-clock allowance.
    WallBudget {
        /// The configured allowance, in seconds.
        seconds: f64,
    },
}

impl Interrupt {
    /// A short, deterministic human-readable reason. The parameters in
    /// the string are configuration (and, for livelock, a
    /// cycle-deterministic firing point), never wall-clock measurements,
    /// so the string is stable across re-runs of the same spec + seed.
    pub fn reason(&self) -> String {
        match self {
            Interrupt::Cancelled => "cancelled".into(),
            Interrupt::CycleBudget { budget } => {
                format!("cycle budget {budget} exhausted")
            }
            Interrupt::Livelock { window, cycle } => {
                format!("livelock: no progress for {window} cycles (at cycle {cycle})")
            }
            Interrupt::WallBudget { seconds } => {
                format!("wall budget {seconds}s exceeded")
            }
        }
    }

    /// Whether this verdict fires at a cycle-deterministic point (so the
    /// resulting record is reproducible) or depends on wall time / an
    /// external signal.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            Interrupt::CycleBudget { .. } | Interrupt::Livelock { .. }
        )
    }
}

/// Per-run supervision state. Construct with [`Watchdog::new`] and the
/// `with_*` builders, hand it to a drive, and the drive calls
/// [`check`](Watchdog::check) once per cycle.
#[derive(Debug, Clone)]
pub struct Watchdog {
    token: Option<CancelToken>,
    cycle_budget: Option<u64>,
    livelock_window: Option<u64>,
    wall_deadline: Option<Instant>,
    wall_seconds: f64,
    last_progress: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    /// The expensive checks (atomic load, `Instant::now`) run once every
    /// `GATE` cycles. At typical simulator speeds (~10^5..10^6 cycles/s)
    /// that bounds cancellation/wall-budget latency to well under a
    /// second while keeping the per-cycle cost to integer compares.
    pub const GATE: u64 = 4096;

    /// A watchdog with nothing armed (every check passes).
    pub fn new() -> Watchdog {
        Watchdog {
            token: None,
            cycle_budget: None,
            livelock_window: None,
            wall_deadline: None,
            wall_seconds: 0.0,
            last_progress: 0,
        }
    }

    /// Arms cooperative cancellation via a shared token.
    pub fn with_cancel(mut self, token: CancelToken) -> Watchdog {
        self.token = Some(token);
        self
    }

    /// Arms a hard cycle budget (relative cycles).
    pub fn with_cycle_budget(mut self, budget: u64) -> Watchdog {
        self.cycle_budget = Some(budget);
        self
    }

    /// Arms livelock detection: if work is pending but no packet is
    /// injected, delivered, or terminally failed for `window` cycles,
    /// the run is stopped.
    pub fn with_livelock_window(mut self, window: u64) -> Watchdog {
        self.livelock_window = Some(window.max(1));
        self
    }

    /// Arms a wall-clock allowance counted from *now*.
    pub fn with_wall_budget(mut self, budget: Duration) -> Watchdog {
        self.wall_deadline = Some(Instant::now() + budget);
        self.wall_seconds = budget.as_secs_f64();
        self
    }

    /// Whether any check is armed. Drives may skip an unarmed watchdog
    /// entirely.
    pub fn is_armed(&self) -> bool {
        self.token.is_some()
            || self.cycle_budget.is_some()
            || self.livelock_window.is_some()
            || self.wall_deadline.is_some()
    }

    /// Records that the run made progress at relative cycle `rel`
    /// (a packet was injected, delivered, or terminally failed).
    #[inline]
    pub fn note_progress(&mut self, rel: u64) {
        self.last_progress = rel;
    }

    /// One per-cycle check. `pending` is consulted *only* when the
    /// livelock window has elapsed — it should report whether the run
    /// still has work outstanding (in-flight packets or queued
    /// injections); an idle network waiting for future traffic is not
    /// livelocked and resets the window instead of firing.
    #[inline]
    pub fn check<F: FnOnce() -> bool>(&mut self, rel: u64, pending: F) -> Option<Interrupt> {
        if let Some(budget) = self.cycle_budget {
            if rel >= budget {
                return Some(Interrupt::CycleBudget { budget });
            }
        }
        if let Some(window) = self.livelock_window {
            if rel.wrapping_sub(self.last_progress) >= window {
                if pending() {
                    return Some(Interrupt::Livelock { window, cycle: rel });
                }
                // Idle, not stuck: nothing is in flight or queued, the
                // workload simply has not produced traffic recently.
                self.last_progress = rel;
            }
        }
        if rel & (Self::GATE - 1) == 0 {
            if let Some(token) = &self.token {
                if token.is_cancelled() {
                    return Some(Interrupt::Cancelled);
                }
            }
            if let Some(deadline) = self.wall_deadline {
                if Instant::now() >= deadline {
                    return Some(Interrupt::WallBudget {
                        seconds: self.wall_seconds,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_watchdog_never_fires() {
        let mut wd = Watchdog::new();
        assert!(!wd.is_armed());
        for rel in 0..(Watchdog::GATE * 3) {
            assert_eq!(wd.check(rel, || true), None);
        }
    }

    #[test]
    fn cycle_budget_fires_exactly_at_budget() {
        let mut wd = Watchdog::new().with_cycle_budget(100);
        assert_eq!(wd.check(99, || true), None);
        assert_eq!(
            wd.check(100, || true),
            Some(Interrupt::CycleBudget { budget: 100 })
        );
    }

    #[test]
    fn livelock_fires_only_when_work_is_pending() {
        let mut wd = Watchdog::new().with_livelock_window(10);
        // Idle network: the window keeps resetting, never fires.
        for rel in 0..100 {
            assert_eq!(wd.check(rel, || false), None);
        }
        // Pending work with progress inside the window: no fire.
        let mut wd = Watchdog::new().with_livelock_window(10);
        for rel in 0..100 {
            if rel % 5 == 0 {
                wd.note_progress(rel);
            }
            assert_eq!(wd.check(rel, || true), None);
        }
        // Pending work, no progress: fires once the window elapses.
        let mut wd = Watchdog::new().with_livelock_window(10);
        wd.note_progress(7);
        for rel in 8..17 {
            assert_eq!(wd.check(rel, || true), None);
        }
        assert_eq!(
            wd.check(17, || true),
            Some(Interrupt::Livelock {
                window: 10,
                cycle: 17
            })
        );
    }

    #[test]
    fn cancel_token_fires_on_gate_cycles() {
        let token = CancelToken::new();
        let mut wd = Watchdog::new().with_cancel(token.clone());
        assert_eq!(wd.check(0, || true), None);
        token.cancel();
        assert!(token.is_cancelled());
        // Off-gate cycles do not consult the token.
        assert_eq!(wd.check(1, || true), None);
        assert_eq!(
            wd.check(Watchdog::GATE, || true),
            Some(Interrupt::Cancelled)
        );
    }

    #[test]
    fn wall_budget_fires_after_deadline() {
        let mut wd = Watchdog::new().with_wall_budget(Duration::from_secs(0));
        // Deadline already passed; first gated check fires.
        assert!(matches!(
            wd.check(0, || true),
            Some(Interrupt::WallBudget { .. })
        ));
    }

    #[test]
    fn reasons_are_deterministic_strings() {
        assert_eq!(Interrupt::Cancelled.reason(), "cancelled");
        assert_eq!(
            Interrupt::CycleBudget { budget: 5000 }.reason(),
            "cycle budget 5000 exhausted"
        );
        assert_eq!(
            Interrupt::Livelock {
                window: 2000,
                cycle: 2100
            }
            .reason(),
            "livelock: no progress for 2000 cycles (at cycle 2100)"
        );
        assert!(Interrupt::Livelock {
            window: 1,
            cycle: 1
        }
        .is_deterministic());
        assert!(!Interrupt::Cancelled.is_deterministic());
    }
}
