//! The SoA-core determinism gate: the committed golden export
//! (`tests/golden/golden.json`, recorded before the data-oriented
//! hot-path refactor) must be reproduced byte-for-byte by today's
//! simulator, for every worker count and lockstep batch size.
//!
//! This is the contract that lets the scheduler batch replicas and the
//! core rearrange its memory layout freely: none of it may move a
//! single canonical bit. If this test fails, the refactor changed
//! simulated behavior — fix the code, do not re-record the golden.

use phastlane_lab::{run_lab, LabSpec};
use std::path::Path;

fn manifest_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn golden_export_is_bit_identical_across_workers_and_batch_sizes() {
    let spec_text = std::fs::read_to_string(manifest_path("../../results/specs/golden.lab"))
        .expect("read results/specs/golden.lab");
    let golden = std::fs::read_to_string(manifest_path("tests/golden/golden.json"))
        .expect("read committed golden export");

    let base = LabSpec::parse(&spec_text).expect("golden spec parses");
    for workers in [1usize, 2] {
        for batch in [1u32, 4, 8] {
            let mut spec = base.clone();
            spec.batch = batch;
            let report = run_lab(&spec, workers).expect("golden spec runs");
            let fresh = report.canonical_json().to_string_pretty();
            assert_eq!(
                fresh, golden,
                "canonical export drifted from the pre-refactor golden \
                 (workers={workers}, batch={batch})"
            );
        }
    }
}
