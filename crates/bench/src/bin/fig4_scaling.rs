//! Figure 4: optimistic, average, and pessimistic scaling trends for the
//! optical transmit and receive chain delays, 45 nm down to 16 nm.

use phastlane_bench::print_row;
use phastlane_photonics::scaling::figure4_series;

fn main() {
    println!("Figure 4: transmit/receive delay scaling trends (ps)\n");
    let widths = [6, 12, 12, 12, 12, 12, 12];
    print_row(
        &[
            "node".into(),
            "tx-opt".into(),
            "tx-avg".into(),
            "tx-pess".into(),
            "rx-opt".into(),
            "rx-avg".into(),
            "rx-pess".into(),
        ],
        &widths,
    );
    for (node, row) in figure4_series() {
        let cells = vec![
            node.to_string(),
            format!("{:.1}", row[0].1.transmit.value()),
            format!("{:.1}", row[1].1.transmit.value()),
            format!("{:.1}", row[2].1.transmit.value()),
            format!("{:.2}", row[0].1.receive.value()),
            format!("{:.2}", row[1].1.receive.value()),
            format!("{:.2}", row[2].1.receive.value()),
        ];
        print_row(&cells, &widths);
    }
    println!("\npaper endpoints at 16nm: transmit 8.0-19.4 ps, receive 1.8-3.7 ps");
}
